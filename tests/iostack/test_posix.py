"""Memory-tier (I/O path switching) service model."""

import pytest

from repro.iostack.cluster import testbed as make_testbed
from repro.iostack.posix import serve_memory, serve_memory_metadata
from repro.iostack.requests import MetadataStream, RequestStream

PLATFORM = make_testbed(n_nodes=2)


def test_memory_tier_is_much_faster_than_lustre():
    from repro.iostack import StackConfiguration
    from repro.iostack.lustre import serve_lustre

    s = RequestStream.uniform("write", 1024 * 1024, 4000, 8, interleave=0.5)
    mem = serve_memory(s, PLATFORM)
    lus = serve_lustre(s, StackConfiguration.default().layer("lustre"), PLATFORM)
    assert mem.seconds < lus.seconds / 5


def test_memory_bandwidth_scales_with_nodes():
    s1 = RequestStream.uniform("write", 1024, 1000, 4)  # 1 node (4 ppn)
    s2 = RequestStream.uniform("write", 1024, 1000, 8)  # 2 nodes
    t1 = serve_memory(s1, PLATFORM).seconds
    t2 = serve_memory(s2, PLATFORM).seconds
    assert t2 < t1


def test_memory_service_reports_bandwidth():
    s = RequestStream.uniform("write", 1024 * 1024, 100, 4)
    svc = serve_memory(s, PLATFORM)
    assert svc.achieved_bandwidth == pytest.approx(s.total_bytes / svc.seconds)


def test_memory_metadata_is_cheap():
    m = MetadataStream(total_ops=10_000, n_procs=8)
    t = serve_memory_metadata(m, PLATFORM)
    from repro.iostack.lustre import serve_metadata

    assert t < serve_metadata(m, PLATFORM) / 10


def test_memory_metadata_none_is_free():
    assert serve_memory_metadata(None, PLATFORM) == 0.0
