"""Request and metadata stream representation and transforms."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.iostack.requests import MAX_SAMPLE, MetadataStream, RequestStream


def test_uniform_stream_totals():
    s = RequestStream.uniform("write", 1024, 5000, 8)
    assert s.total_bytes == 1024 * 5000
    assert s.mean_size == 1024
    assert s.sizes.size == MAX_SAMPLE
    assert s.scale == pytest.approx(5000 / MAX_SAMPLE)
    assert s.ops_per_proc == pytest.approx(625)


def test_small_streams_sample_everything():
    s = RequestStream.uniform("read", 10, 7, 2)
    assert s.sizes.size == 7
    assert s.scale == 1.0


def test_lognormal_stream_consistent_totals(rng):
    s = RequestStream.lognormal("write", 4096, 1.0, 10_000, 16, rng)
    assert s.total_bytes == pytest.approx(s.mean_size * s.total_ops, abs=1.0)
    assert np.all(s.sizes >= 1.0)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(total_ops=0),
        dict(total_bytes=0),
        dict(n_procs=0),
        dict(contiguity=1.5),
        dict(interleave=-0.1),
        dict(alignment=0),
        dict(nodes=-1),
        dict(op="append"),
    ],
)
def test_invalid_fields_rejected(kwargs):
    base = dict(
        op="write",
        sizes=np.array([100.0]),
        total_ops=10,
        total_bytes=1000,
        n_procs=2,
    )
    base.update(kwargs)
    with pytest.raises(ValueError):
        RequestStream(**base)


def test_oversized_sample_rejected():
    with pytest.raises(ValueError):
        RequestStream(
            op="write",
            sizes=np.ones(MAX_SAMPLE + 1),
            total_ops=MAX_SAMPLE + 1,
            total_bytes=MAX_SAMPLE + 1,
            n_procs=1,
        )


# -- transforms -----------------------------------------------------------------


@given(st.floats(min_value=0.01, max_value=100.0))
def test_scaled_ops_scales_totals(factor):
    s = RequestStream.uniform("write", 100, 1000, 4)
    scaled = s.scaled_ops(factor)
    assert scaled.total_ops == max(1, round(1000 * factor))
    assert scaled.total_bytes == max(1, round(100_000 * factor))
    assert np.array_equal(scaled.sizes, s.sizes)


def test_aligned_preserves_bytes_and_sets_marker():
    s = RequestStream.uniform("write", 3_000_000, 100, 4)
    a = s.aligned(1024 * 1024)
    assert a.alignment == 1024 * 1024
    assert a.total_bytes == s.total_bytes
    assert a.total_ops == s.total_ops


def test_aligned_noop_for_boundary_one():
    s = RequestStream.uniform("write", 100, 10, 1)
    assert s.aligned(1) is s


def test_coalesce_merges_sequential_requests():
    s = RequestStream.uniform("write", 4096, 10_000, 4, contiguity=1.0)
    merged = s.coalesce(64 * 1024)
    assert merged.total_ops < s.total_ops
    assert merged.total_bytes == s.total_bytes
    assert merged.mean_size > s.mean_size


def test_coalesce_respects_contiguity():
    random_access = RequestStream.uniform("write", 4096, 10_000, 4, contiguity=0.0)
    assert random_access.coalesce(64 * 1024) is random_access


def test_coalesce_noop_for_large_requests():
    s = RequestStream.uniform("write", 1024 * 1024, 100, 4)
    assert s.coalesce(1024) is s


def test_nodes_spanned_inference():
    s = RequestStream.uniform("write", 100, 100, 64)
    assert s.nodes_spanned(n_nodes=4, procs_per_node=32) == 2
    assert s.nodes_spanned(n_nodes=1, procs_per_node=32) == 1
    sparse = RequestStream.uniform("write", 100, 100, 64, nodes=50)
    assert sparse.nodes_spanned(n_nodes=500, procs_per_node=32) == 50
    assert sparse.nodes_spanned(n_nodes=10, procs_per_node=32) == 10


# -- metadata stream --------------------------------------------------------------


def test_metadata_stream_basics():
    m = MetadataStream(total_ops=1000, n_procs=10)
    assert m.ops_per_proc == 100
    assert m.scaled_ops(0.5).total_ops == 500


def test_metadata_stream_validation():
    with pytest.raises(ValueError):
        MetadataStream(total_ops=-1, n_procs=1)
    with pytest.raises(ValueError):
        MetadataStream(total_ops=1, n_procs=0)
    with pytest.raises(ValueError):
        MetadataStream(total_ops=1, n_procs=1, write_fraction=2.0)
    with pytest.raises(ValueError):
        MetadataStream(total_ops=10, n_procs=1).scaled_ops(0.0)
