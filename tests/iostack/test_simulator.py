"""The composed stack simulator and Darshan reports."""

import pytest

from repro.iostack import IOStackSimulator, NoiseModel, StackConfiguration, cori
from repro.iostack.cluster import testbed as make_testbed
from tests.conftest import make_workload

MiB = 1024 * 1024


@pytest.fixture
def sim():
    return IOStackSimulator(make_testbed(n_nodes=2), NoiseModel.quiet())


def test_run_produces_consistent_report(sim, default_config):
    w = make_workload()
    report = sim.run(w, default_config)
    assert report.app_bytes_written == w.bytes_written
    assert report.app_write_ops == w.write_ops
    assert report.write_seconds > 0
    assert report.runtime_seconds >= report.compute_seconds
    assert report.alpha == pytest.approx(1.0)  # write-only workload
    assert len(report.phases) == len(w.phases())


def test_quiet_runs_are_deterministic(sim, default_config):
    w = make_workload()
    a = sim.run(w, default_config)
    b = sim.run(w, default_config)
    assert a.runtime_seconds == b.runtime_seconds
    assert a.write_bandwidth == b.write_bandwidth


def test_noise_perturbs_io_not_compute(default_config):
    noisy = IOStackSimulator(make_testbed(2), NoiseModel(sigma=0.3, seed=1))
    w = make_workload()
    a = noisy.run(w, default_config)
    b = noisy.run(w, default_config)
    assert a.io_seconds != b.io_seconds
    assert a.compute_seconds == b.compute_seconds


def test_evaluate_charges_one_run(sim, default_config):
    w = make_workload()
    res = sim.evaluate(w, default_config, repeats=3)
    single = sim.run(w, default_config)
    assert res.charged_seconds == pytest.approx(single.runtime_seconds)
    assert res.perf_mbps > 0
    assert res.alpha == pytest.approx(1.0)


def test_evaluate_perf_is_weighted_objective(sim, default_config):
    w = make_workload()
    res = sim.evaluate(w, default_config, repeats=1)
    # write-only: perf == write bandwidth
    assert res.perf_mbps == pytest.approx(res.write_bandwidth_mbps)


def test_evaluate_rejects_zero_repeats(sim, default_config, small_workload):
    with pytest.raises(ValueError):
        sim.evaluate(small_workload, default_config, repeats=0)


def test_tuned_beats_default(quiet_sim, default_config, tuned_config):
    from repro.workloads import flash

    w = flash()
    base = quiet_sim.evaluate(w, default_config).perf_mbps
    tuned = quiet_sim.evaluate(w, tuned_config).perf_mbps
    assert tuned > 3 * base


def test_memory_tier_ignores_lustre_parameters(sim, default_config, tuned_config):
    w = make_workload().switched_to_memory()
    a = sim.evaluate(w, default_config).perf_mbps
    b = sim.evaluate(w, tuned_config.with_values(sieve_buf_size=64 * 1024)).perf_mbps
    # Lustre/MPI-IO knobs have no effect on the memory tier.
    assert a == pytest.approx(b, rel=0.02)


def test_platform_scales_to_workload_nodes(default_config):
    sim = IOStackSimulator(cori(4), NoiseModel.quiet())
    small = make_workload(n_procs=64, n_nodes=2)
    big = make_workload(n_procs=256, n_nodes=8)
    t_small = sim.run(small, default_config).runtime_seconds
    t_big = sim.run(big, default_config).runtime_seconds
    # 4x the traffic over 4x the clients: runtime grows roughly linearly
    # with volume plus bounded contention -- never quadratically.
    assert 1.0 * t_small < t_big < 8 * t_small


def test_report_summary_keys(sim, default_config, small_workload):
    summary = sim.run(small_workload, default_config).summary()
    for key in (
        "app_bytes_written", "posix_bytes_written", "runtime_seconds",
        "write_bandwidth_mbps", "meta_ops",
    ):
        assert key in summary
