"""Unit conversions and formatting helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.iostack import units


def test_binary_prefixes_are_powers_of_1024():
    assert units.KiB == 1024
    assert units.MiB == 1024**2
    assert units.GiB == 1024**3
    assert units.TiB == 1024**4


def test_decimal_prefixes_are_powers_of_1000():
    assert units.MB == 1_000_000
    assert units.GB == 1_000_000_000


def test_bandwidth_round_trip():
    assert units.mb_per_sec_to_bytes_per_sec(units.bytes_per_sec_to_mb_per_sec(5e9)) == pytest.approx(5e9)


def test_minutes_round_trip():
    assert units.minutes_to_seconds(units.seconds_to_minutes(123.0)) == pytest.approx(123.0)


@given(st.floats(min_value=1.0, max_value=1e15))
def test_bandwidth_conversion_is_monotone(value):
    assert units.bytes_per_sec_to_mb_per_sec(value) > 0
    assert units.bytes_per_sec_to_mb_per_sec(value * 2) == pytest.approx(
        2 * units.bytes_per_sec_to_mb_per_sec(value)
    )


def test_format_bytes_picks_sensible_suffix():
    assert units.format_bytes(512) == "512 B"
    assert units.format_bytes(2048) == "2.0 KiB"
    assert units.format_bytes(3 * units.MiB) == "3.0 MiB"
    assert units.format_bytes(5 * units.GiB) == "5.0 GiB"
    assert "TiB" in units.format_bytes(3 * units.TiB)


def test_format_bandwidth_switches_to_gbps():
    assert units.format_bandwidth(500 * units.MB).endswith("MB/s")
    assert units.format_bandwidth(2 * units.GB).endswith("GB/s")
