"""The metrics registry and the shared summary-line formatters."""

import pytest

from repro.iostack.evalcache import CacheStats, EvaluationStats
from repro.observability.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
    fastpath_line,
    guardrails_line,
    resilience_line,
    snapshot_degraded,
)
from repro.observability.profiling import Profiler
from repro.tuners.base import IterationRecord, TuningResult

pytestmark = pytest.mark.observability


def test_counter_only_increases():
    c = Counter()
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_and_timer():
    g = Gauge()
    assert g.value is None
    g.set(3)
    assert g.value == 3.0
    t = Timer()
    assert t.mean_seconds == 0.0
    t.observe(0.5)
    t.observe(1.5)
    assert t.count == 2 and t.mean_seconds == 1.0
    d = t.as_dict()
    assert d["min_seconds"] == 0.5 and d["max_seconds"] == 1.5
    with pytest.raises(ValueError):
        t.observe(-0.1)


def test_registry_accessors_and_snapshot():
    reg = MetricsRegistry()
    reg.counter("b").inc(2)
    reg.counter("a").inc(1)
    reg.gauge("g").set(0.5)
    reg.timer("t").observe(0.25)
    assert "a" in reg and "missing" not in reg
    assert reg.names() == ("a", "b", "g", "t")
    snap = reg.snapshot()
    assert list(snap["counters"]) == ["a", "b"]  # sorted for stable JSON
    assert snap["gauges"]["g"] == 0.5
    assert snap["timers"]["t"]["count"] == 1
    assert reg.counter("a") is reg.counter("a")  # create-on-first-use, stable


def make_stats(**overrides):
    fields = dict(
        evaluations=20, cache_hits=5, cache_misses=15, traces_built=15,
        trace_replays=40,
    )
    fields.update(overrides)
    return EvaluationStats(**fields)


def test_ingest_eval_stats_maps_every_counter():
    stats = make_stats(retries=2, faults_injected=3, guardrail_trips=1,
                       prewarm_lookups=6, prewarm_hits=4, prewarm_builds=2)
    reg = MetricsRegistry()
    reg.ingest_eval_stats(stats)
    c = reg.snapshot()["counters"]
    assert c["evaluations"] == 20
    assert c["cache.hits"] == 5 and c["cache.misses"] == 15
    assert c["trace.built"] == 15 and c["trace.replays"] == 40
    assert c["trace.reuse"] == stats.trace_reuse == 25
    assert c["resilience.retries"] == 2
    assert c["faults.injected"] == 3
    assert c["guardrail.trips"] == 1
    assert c["cache.prewarm_lookups"] == 6
    assert c["cache.prewarm_hits"] == 4
    assert c["cache.prewarm_builds"] == 2
    assert reg.snapshot()["gauges"]["cache.hit_rate"] == stats.cache_hit_rate


def test_fastpath_line_matches_describe():
    for stats in (make_stats(), EvaluationStats(), make_stats(cache_hits=0)):
        reg = MetricsRegistry()
        reg.ingest_eval_stats(stats)
        assert fastpath_line(reg.snapshot()) == stats.describe()


def test_resilience_line_matches_describe_resilience():
    stats = make_stats(retries=3, timeouts=1, quarantined=2, fallbacks=1,
                       faults_injected=4)
    reg = MetricsRegistry()
    reg.ingest_eval_stats(stats)
    snapshot = reg.snapshot()
    assert resilience_line(snapshot) == stats.describe_resilience()
    assert snapshot_degraded(snapshot) is True
    clean = MetricsRegistry()
    clean.ingest_eval_stats(make_stats())
    assert snapshot_degraded(clean.snapshot()) is False


def test_guardrails_line_counts_before_dedup():
    trips = ["a:b (x)", "a:b (x)", "c:d (y)"]
    assert guardrails_line(trips) == (
        "3 trip(s), degraded to plain-GA behaviour: a:b (x); c:d (y)"
    )


def make_result():
    result = TuningResult("hstuner", "w", baseline_perf=100.0)
    result.history = [
        IterationRecord(0, 150.0, 150.0, 10.0, 8),
        IterationRecord(1, 140.0, 160.0, 20.0, 8),
    ]
    result.stop_reason = "budget"
    return result


def test_from_run_absorbs_result_cache_and_profiler():
    result = make_result()
    result.eval_stats = make_stats()
    profiler = Profiler()
    profiler.record("simulator.trace", 0.25)
    reg = MetricsRegistry.from_run(
        result,
        cache_stats=CacheStats(hits=5, misses=15, size=9, maxsize=512),
        profiler=profiler,
    )
    snap = reg.snapshot()
    assert snap["gauges"]["run.baseline_perf_mbps"] == 100.0
    assert snap["gauges"]["run.best_perf_mbps"] == 160.0
    assert snap["gauges"]["run.gain_mbps"] == 60.0
    assert snap["gauges"]["run.total_minutes"] == 20.0
    assert snap["counters"]["run.iterations"] == 2
    assert snap["counters"]["run.total_evaluations"] == 16
    assert snap["gauges"]["cache.size"] == 9.0
    assert snap["timers"]["profile.simulator.trace"]["count"] == 1


def test_from_run_without_eval_stats_still_counts_trips():
    result = make_result()
    result.guardrail_trips = ("checkpoint:schema (bad)",)
    snap = MetricsRegistry.from_run(result).snapshot()
    assert snap["counters"]["guardrail.trips"] == 1
