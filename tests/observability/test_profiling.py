"""Profiling hooks: spans, activation, and the shared no-op context."""

import pytest

from repro.observability.profiling import (
    Profiler,
    activate,
    active_profiler,
    deactivate,
    maybe_span,
)

pytestmark = pytest.mark.observability


@pytest.fixture(autouse=True)
def no_active_profiler():
    """Every test starts and ends with no active profiler."""
    deactivate()
    yield
    deactivate()


def test_span_accumulates_stats():
    profiler = Profiler()
    with profiler.span("work"):
        pass
    with profiler.span("work"):
        pass
    snap = profiler.snapshot()
    assert snap["work"]["count"] == 2
    assert snap["work"]["total_seconds"] >= 0.0
    assert snap["work"]["min_seconds"] <= snap["work"]["max_seconds"]


def test_span_records_on_exception():
    profiler = Profiler()
    with pytest.raises(RuntimeError):
        with profiler.span("boom"):
            raise RuntimeError("x")
    assert profiler.snapshot()["boom"]["count"] == 1


def test_record_external_duration():
    profiler = Profiler()
    profiler.record("fsync", 0.5)
    profiler.record("fsync", 1.5)
    stats = profiler.snapshot()["fsync"]
    assert stats["count"] == 2 and stats["total_seconds"] == 2.0
    assert stats["mean_seconds"] == 1.0


def test_snapshot_sorted_by_total_descending():
    profiler = Profiler()
    profiler.record("small", 0.1)
    profiler.record("big", 5.0)
    assert list(profiler.snapshot()) == ["big", "small"]


def test_maybe_span_is_shared_noop_when_inactive():
    assert active_profiler() is None
    span = maybe_span("anything")
    assert maybe_span("else") is span  # one shared nullcontext, no allocs
    with span:
        pass


def test_activate_routes_maybe_span_to_the_profiler():
    profiler = activate()
    assert active_profiler() is profiler
    with maybe_span("hot"):
        pass
    assert profiler.snapshot()["hot"]["count"] == 1
    assert deactivate() is profiler
    assert active_profiler() is None


def test_activate_accepts_existing_profiler():
    mine = Profiler()
    assert activate(mine) is mine
    assert active_profiler() is mine


def test_report_table():
    profiler = Profiler()
    assert profiler.report() == "profile: no spans recorded"
    profiler.record("simulator.trace", 0.002)
    text = profiler.report()
    assert text.startswith("profile:")
    assert "simulator.trace" in text
    assert "total_ms" in text and "mean_us" in text
