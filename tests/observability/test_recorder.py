"""The trace recorder: envelope, sequencing, torn traces, no-op default."""

import io
import json

import numpy as np
import pytest

from repro.observability.events import EVENT_TYPES, SCHEMA_VERSION, validate_event
from repro.observability.recorder import (
    NULL_RECORDER,
    Recorder,
    TraceRecorder,
    read_trace,
)

pytestmark = pytest.mark.observability


class FakeClock:
    def __init__(self, minutes=0.0):
        self.elapsed_minutes = minutes


def test_envelope_fields_and_sequencing(tmp_path):
    path = tmp_path / "t.jsonl"
    with TraceRecorder(path) as rec:
        rec.emit("run_start", tuner="hstuner")
        rec.emit("run_end", stop_reason="budget")
        assert rec.n_events == 2
    events = read_trace(path)
    assert [e["event"] for e in events] == ["run_start", "run_end"]
    assert [e["seq"] for e in events] == [1, 2]
    assert all(e["schema"] == SCHEMA_VERSION for e in events)
    assert all(e["wall_s"] >= 0 for e in events)
    assert "sim_minutes" not in events[0]  # no clock bound
    assert events[0]["tuner"] == "hstuner"


def test_bound_clock_stamps_sim_minutes(tmp_path):
    path = tmp_path / "t.jsonl"
    rec = TraceRecorder(path)
    clock = FakeClock()
    rec.bind_clock(clock)
    clock.elapsed_minutes = 12.5
    rec.emit("baseline", perf=1.0)
    rec.close()
    (event,) = read_trace(path)
    assert event["sim_minutes"] == 12.5


def test_numpy_payloads_serialise(tmp_path):
    path = tmp_path / "t.jsonl"
    with TraceRecorder(path) as rec:
        rec.emit(
            "evaluation",
            perf=np.float64(3.5),
            genome=np.array([1, 2]),
            iteration=np.int64(4),
            subset=("a", "b"),
        )
    (event,) = read_trace(path)
    assert event["perf"] == 3.5
    assert event["genome"] == [1, 2]
    assert event["iteration"] == 4
    assert event["subset"] == ["a", "b"]


def test_unserialisable_payload_raises(tmp_path):
    rec = TraceRecorder(tmp_path / "t.jsonl")
    with pytest.raises(TypeError, match="cannot serialise"):
        rec.emit("cache", op=object())


def test_emit_after_close_is_a_noop(tmp_path):
    path = tmp_path / "t.jsonl"
    rec = TraceRecorder(path)
    rec.emit("cache", op="hit")
    rec.close()
    rec.emit("cache", op="miss")  # late straggler: dropped, no crash
    rec.close()  # idempotent
    assert len(read_trace(path)) == 1


def test_file_like_sink_is_not_closed():
    sink = io.StringIO()
    rec = TraceRecorder(sink)
    rec.emit("cache", op="hit")
    rec.close()
    assert not sink.closed
    assert json.loads(sink.getvalue())["op"] == "hit"


def test_parent_directories_are_created(tmp_path):
    path = tmp_path / "deep" / "nested" / "t.jsonl"
    with TraceRecorder(path) as rec:
        rec.emit("run_start")
    assert len(read_trace(path)) == 1


def test_null_recorder_contract():
    assert NULL_RECORDER.enabled is False
    assert isinstance(NULL_RECORDER, Recorder)
    assert isinstance(TraceRecorder(io.StringIO()), Recorder)
    NULL_RECORDER.emit("run_start", anything="goes")
    NULL_RECORDER.bind_clock(object())
    NULL_RECORDER.flush()
    NULL_RECORDER.close()


def test_torn_trailing_line_is_tolerated(tmp_path):
    path = tmp_path / "t.jsonl"
    with TraceRecorder(path) as rec:
        rec.emit("run_start")
        rec.emit("generation", iteration=0)
    whole = path.read_text()
    path.write_text(whole + '{"schema":1,"event":"gen')  # killed mid-write
    assert [e["event"] for e in read_trace(path)] == ["run_start", "generation"]


def test_mid_file_corruption_raises_with_line_number(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('not json\n{"schema":1,"event":"run_end","seq":2}\n')
    with pytest.raises(ValueError, match="undecodable"):
        read_trace(path)


@pytest.mark.parametrize(
    "record, match",
    [
        ([], "must be an object"),
        ({"event": "run_start", "seq": 1}, "schema"),
        ({"schema": SCHEMA_VERSION + 1, "event": "run_start", "seq": 1}, "newer"),
        ({"schema": SCHEMA_VERSION, "event": "warp-drive", "seq": 1}, "unknown"),
        ({"schema": SCHEMA_VERSION, "event": "run_start"}, "seq"),
    ],
)
def test_validate_event_rejections(record, match):
    with pytest.raises(ValueError, match=match):
        validate_event(record)


def test_event_type_set_is_the_documented_eleven():
    assert len(EVENT_TYPES) == 11
    assert {"run_start", "run_end", "generation", "evaluation"} <= EVENT_TYPES
