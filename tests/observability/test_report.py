"""tunio-report: reconstructing runs from their trace files alone."""

import json

import numpy as np
import pytest

from repro.iostack import EvaluationCache, IOStackSimulator, NoiseModel, cori
from repro.observability.recorder import TraceRecorder, read_trace
from repro.observability.report import (
    baseline_line,
    final_line,
    iteration_line,
    main,
    reconstruct_result,
    render_report,
)
from repro.tuners.hstuner import HSTuner
from repro.tuners.journal import JournalWriter, ReplayCursor, load_journal
from repro.tuners.stoppers import NoStop
from tests.conftest import make_workload

pytestmark = pytest.mark.observability


def make_tuner(recorder=None):
    sim = IOStackSimulator(cori(2), NoiseModel(seed=11))
    return HSTuner(
        sim, stopper=NoStop(), rng=np.random.default_rng(7),
        population_size=4, cache=EvaluationCache(), recorder=recorder,
    )


def traced_run(path, iterations=4):
    with TraceRecorder(path) as recorder:
        result = make_tuner(recorder).tune(
            make_workload(), max_iterations=iterations
        )
    return result


# -- reconstruction from synthetic events --------------------------------------


def _ev(event, **fields):
    return {"schema": 1, "event": event, "seq": 0, "wall_s": 0.0, **fields}


def _gen(iteration, best_perf, replayed=False):
    return _ev(
        "generation", iteration=iteration, iteration_perf=best_perf,
        best_perf=best_perf, elapsed_minutes=10.0 * (iteration + 1),
        evaluations=4, subset=["striping_factor"], replayed=replayed,
    )


def test_duplicate_generations_resolve_to_the_last_emission():
    events = [
        _ev("run_start", tuner="t", workload="w"),
        _ev("baseline", perf=100.0),
        _gen(0, 110.0, replayed=True),
        _gen(0, 120.0),  # resume re-emission wins
    ]
    result = reconstruct_result(events)
    assert len(result.history) == 1
    assert result.history[0].best_perf == 120.0
    assert result.stop_reason == "incomplete"  # no run_end


def test_cli_sourced_trips_are_prepended():
    events = [
        _ev("guardrail_trip", source="cli", trip="checkpoint:schema (bad)"),
        _ev("run_end", stop_reason="budget", stopped_at=None,
            baseline_perf=100.0, guardrail_trips=["picker:impact (x)"]),
    ]
    result = reconstruct_result(events)
    assert result.guardrail_trips == (
        "checkpoint:schema (bad)", "picker:impact (x)",
    )
    assert result.stop_reason == "budget"


def test_tuner_level_trips_do_not_double_count():
    events = [
        _ev("guardrail_trip", guardrail="picker", kind="impact", detail="x",
            iteration=2),  # no source=cli: already in run_end's list
        _ev("run_end", stop_reason="budget", stopped_at=None,
            baseline_perf=100.0, guardrail_trips=["picker:impact (x)"]),
    ]
    assert reconstruct_result(events).guardrail_trips == ("picker:impact (x)",)


def test_unknown_eval_stats_fields_are_ignored():
    events = [
        _ev("run_end", stop_reason="budget", stopped_at=None,
            baseline_perf=1.0,
            eval_stats={"evaluations": 3, "from_the_future": 9}),
    ]
    result = reconstruct_result(events)
    assert result.eval_stats.evaluations == 3


def test_incomplete_trace_renders_with_unavailable_roti():
    text = render_report([_ev("run_start", tuner="t", workload="w")], "x")
    assert "incomplete" in text
    assert "roti: unavailable" in text


# -- reconstruction from real traced runs --------------------------------------


def test_reconstruction_matches_the_live_result(tmp_path):
    trace = tmp_path / "run.jsonl"
    result = traced_run(trace)
    rebuilt = reconstruct_result(read_trace(trace))
    assert rebuilt.tuner_name == "hstuner"
    assert rebuilt.workload_name == result.workload_name
    assert rebuilt.baseline_perf == result.baseline_perf
    assert rebuilt.stop_reason == result.stop_reason
    assert rebuilt.stopped_at == result.stopped_at
    assert rebuilt.history == result.history
    assert rebuilt.eval_stats == result.eval_stats
    assert rebuilt.guardrail_trips == result.guardrail_trips
    assert baseline_line(rebuilt) == baseline_line(result)
    assert final_line(rebuilt) == final_line(result)
    for a, b in zip(rebuilt.history, result.history):
        assert iteration_line(a, rebuilt.stopped_at) == iteration_line(
            b, result.stopped_at
        )


def test_resumed_trace_reports_identically_to_the_fresh_one(tmp_path):
    """A trace written by a journal-resumed run reconstructs the same
    report as the uninterrupted run's trace (replayed generations are
    re-emitted, so the resumed trace stands alone)."""
    fresh_trace = tmp_path / "fresh.jsonl"
    journal_path = tmp_path / "run.journal"
    with TraceRecorder(fresh_trace) as recorder:
        tuner = make_tuner(recorder)
        writer = JournalWriter(str(journal_path), header={"h": 1})
        tuner.attach_journal(writer)
        tuner.tune(make_workload(), max_iterations=5)
        writer.close()

    # keep header + baseline + 2 generations: a simulated kill
    lines = open(journal_path).readlines()
    cut = tmp_path / "cut.journal"
    cut.write_text("".join(lines[:4]))

    journal = load_journal(str(cut))
    resumed_trace = tmp_path / "resumed.jsonl"
    with TraceRecorder(resumed_trace) as recorder:
        resumed = make_tuner(recorder)
        writer = JournalWriter(str(cut), header={"h": 1}, resume_from=journal)
        resumed.attach_journal(writer, replay=ReplayCursor(journal))
        resumed.tune(make_workload(), max_iterations=5)
        writer.close()

    fresh = render_report(read_trace(fresh_trace), "trace").splitlines()
    again = render_report(read_trace(resumed_trace), "trace").splitlines()
    # the header line carries the event count (prewarm events differ);
    # every reconstructed line below it must match exactly
    assert fresh[1:] == again[1:]
    assert any(line.startswith("roti: peak") for line in fresh)


# -- the CLI entry point -------------------------------------------------------


def test_main_missing_and_invalid_traces_exit_2(tmp_path, capsys):
    assert main([str(tmp_path / "nope.jsonl")]) == 2
    assert "not found" in capsys.readouterr().err

    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main([str(empty)]) == 2
    assert "no events" in capsys.readouterr().err

    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n\n")
    assert main([str(bad)]) == 2
    assert "invalid trace" in capsys.readouterr().err


def test_main_incomplete_trace_warns_and_exits_1(tmp_path, capsys):
    trace = tmp_path / "cut.jsonl"
    with TraceRecorder(trace) as rec:
        rec.emit("run_start", tuner="t", workload="w")
        rec.emit("baseline", perf=100.0)
    assert main([str(trace)]) == 1
    captured = capsys.readouterr()
    assert "no run_end" in captured.err
    assert "incomplete" in captured.out


def test_main_reports_a_complete_trace(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    result = traced_run(trace)
    assert main([str(trace)]) == 0
    out = capsys.readouterr().out
    assert final_line(result) in out
    assert baseline_line(result) in out
    assert "fastpath:" in out
    assert "roti: peak" in out


def test_main_json_payload(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    result = traced_run(trace)
    assert main([str(trace), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["best_perf"] == result.best_perf
    assert payload["stop_reason"] == result.stop_reason
    assert len(payload["history"]) == len(result.history)
    assert payload["metrics"]["counters"]["evaluations"] == (
        result.eval_stats.evaluations
    )
