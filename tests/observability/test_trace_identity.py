"""Acceptance: the recorder is a pure observer.

Traced runs must be bit-identical to untraced ones (the recorder never
draws RNG or touches the simulated clock) and must stay near zero
overhead (the ISSUE's 1.25x guard on a 10-generation tune).
"""

import time

import numpy as np
import pytest

from repro.iostack import EvaluationCache, IOStackSimulator, NoiseModel, cori
from repro.observability.recorder import NULL_RECORDER, TraceRecorder, read_trace
from repro.tuners.hstuner import HSTuner
from repro.tuners.stoppers import NoStop
from tests.conftest import make_workload

pytestmark = pytest.mark.observability


def run(recorder=None, iterations=5):
    sim = IOStackSimulator(cori(2), NoiseModel(seed=11))
    tuner = HSTuner(
        sim, stopper=NoStop(), rng=np.random.default_rng(7),
        population_size=4, cache=EvaluationCache(), recorder=recorder,
    )
    return tuner.tune(make_workload(), max_iterations=iterations)


def test_traced_run_is_bit_identical(tmp_path):
    bare = run()
    with TraceRecorder(tmp_path / "run.jsonl") as recorder:
        traced = run(recorder)
    assert traced.history == bare.history
    assert traced.baseline_perf == bare.baseline_perf
    assert traced.eval_stats == bare.eval_stats
    assert traced.best_config == bare.best_config

    events = read_trace(tmp_path / "run.jsonl")
    kinds = {e["event"] for e in events}
    assert {"run_start", "baseline", "evaluation", "generation",
            "cache", "run_end"} <= kinds
    assert [e["seq"] for e in events] == list(range(1, len(events) + 1))


def test_trace_carries_the_tuning_clock():
    import io

    sink = io.StringIO()
    recorder = TraceRecorder(sink)
    run(recorder, iterations=3)
    import json

    events = [json.loads(line) for line in sink.getvalue().splitlines()]
    generations = [e for e in events if e["event"] == "generation"]
    assert len(generations) == 3
    # sim_minutes is stamped once the tuner binds its clock and advances
    # with the simulated (not wall) clock
    minutes = [e["sim_minutes"] for e in generations]
    assert minutes == sorted(minutes) and minutes[-1] > 0


def test_run_end_carries_the_full_result(tmp_path):
    with TraceRecorder(tmp_path / "run.jsonl") as recorder:
        result = run(recorder)
    end = read_trace(tmp_path / "run.jsonl")[-1]
    assert end["event"] == "run_end"
    assert end["best_perf"] == result.best_perf
    assert end["baseline_perf"] == result.baseline_perf
    assert end["stop_reason"] == result.stop_reason
    assert end["total_evaluations"] == result.total_evaluations
    assert end["eval_stats"]["evaluations"] == result.eval_stats.evaluations


@pytest.mark.slow
def test_trace_overhead_within_budget(tmp_path):
    """A traced 10-generation tune stays within 1.25x of the
    NullRecorder run (best of three to shrug off scheduler noise, plus
    a small absolute allowance for sub-second runs)."""

    def timed(make_recorder):
        best = float("inf")
        for _ in range(3):
            recorder = make_recorder()
            start = time.perf_counter()
            run(recorder, iterations=10)
            best = min(best, time.perf_counter() - start)
            if recorder is not NULL_RECORDER:
                recorder.close()
        return best

    bare = timed(lambda: NULL_RECORDER)
    counter = iter(range(100))
    traced = timed(
        lambda: TraceRecorder(tmp_path / f"run{next(counter)}.jsonl")
    )
    assert traced <= 1.25 * bare + 0.05, (
        f"tracing overhead {traced / bare:.2f}x exceeds the 1.25x budget"
    )
