"""The neural contextual bandit (state observer)."""

import numpy as np
import pytest

from repro.rl import NeuralContextualBandit


def test_state_observation_shape(rng):
    bandit = NeuralContextualBandit(context_dim=5, state_dim=8, rng=rng)
    obs = bandit.observe_state(np.zeros(5))
    assert obs.shape == (8,)


def test_reward_model_learns(rng):
    bandit = NeuralContextualBandit(context_dim=3, epsilon=0.0, rng=rng, learning_rate=3e-3)
    for _ in range(800):
        c = rng.uniform(0, 1, 3)
        bandit.update(c, float(c[0]))  # reward = first feature
    lo = bandit.predict_reward(np.array([[0.1, 0.5, 0.5]]))[0]
    hi = bandit.predict_reward(np.array([[0.9, 0.5, 0.5]]))[0]
    assert hi > lo
    assert bandit.updates_seen == 800


def test_greedy_selection_prefers_predicted_best(rng):
    bandit = NeuralContextualBandit(context_dim=2, epsilon=0.0, rng=rng, learning_rate=3e-3)
    for _ in range(500):
        c = rng.uniform(0, 1, 2)
        bandit.update(c, float(c.sum()))
    candidates = np.array([[0.1, 0.1], [0.9, 0.9]])
    picks = [bandit.select(candidates) for _ in range(10)]
    assert all(p == 1 for p in picks)


def test_epsilon_explores(rng):
    bandit = NeuralContextualBandit(context_dim=2, epsilon=1.0, rng=rng)
    picks = {bandit.select(np.array([[0.0, 0.0], [1.0, 1.0]])) for _ in range(50)}
    assert picks == {0, 1}


def test_dimension_validation(rng):
    bandit = NeuralContextualBandit(context_dim=4, rng=rng)
    with pytest.raises(ValueError):
        bandit.update(np.zeros(3), 1.0)
    with pytest.raises(ValueError):
        bandit.observe_state(np.zeros(5))
    with pytest.raises(ValueError):
        NeuralContextualBandit(context_dim=0)
    with pytest.raises(ValueError):
        NeuralContextualBandit(context_dim=2, epsilon=1.5)


def test_state_changes_with_learning(rng):
    bandit = NeuralContextualBandit(context_dim=2, rng=rng, learning_rate=1e-2)
    c = np.array([0.5, 0.5])
    before = bandit.observe_state(c).copy()
    for _ in range(200):
        bandit.update(c, 1.0)
    after = bandit.observe_state(c)
    assert not np.allclose(before, after)
