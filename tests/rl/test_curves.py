"""Synthetic tuning-curve generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rl.curves import LogCurve, LogCurveGenerator


@settings(max_examples=40)
@given(st.integers(0, 2**31 - 1))
def test_curves_are_monotone_and_bounded(seed):
    gen = LogCurveGenerator()
    curve = gen.sample(np.random.default_rng(seed))
    v = curve.values
    assert v.size == gen.n_iterations
    assert np.all(np.diff(v) >= -1e-12)  # best-so-far is monotone
    assert np.all(v > 0)
    assert curve.final == pytest.approx(float(v[-1]))
    assert 0 <= curve.ideal_stop < v.size


def test_curve_shapes_vary(rng):
    gen = LogCurveGenerator()
    finals = [gen.sample(rng).final for _ in range(50)]
    assert np.std(finals) > 0.05


def test_staged_curves_have_late_gains():
    gen = LogCurveGenerator(
        staged_fraction=1.0, saturating_fraction=0.0, noise_sigma=0.0,
        dip_probability=0.0,
    )
    rng = np.random.default_rng(0)
    late_gains = []
    for _ in range(30):
        v = gen.sample(rng).values
        late_gains.append(v[-1] - v[25])
    # With a surge onset up to iteration 28, many curves gain late.
    assert sum(g > 0.05 for g in late_gains) > 5


def test_saturating_curves_flatten():
    gen = LogCurveGenerator(
        staged_fraction=0.0, saturating_fraction=1.0, noise_sigma=0.0,
        dip_probability=0.0, tau_range=(2.0, 3.0),
    )
    v = gen.sample(np.random.default_rng(1)).values
    assert v[-1] - v[25] < 0.01  # flat tail


def test_sample_batch():
    gen = LogCurveGenerator()
    batch = gen.sample_batch(5, np.random.default_rng(0))
    assert len(batch) == 5
    with pytest.raises(ValueError):
        gen.sample_batch(0, np.random.default_rng(0))


def test_generator_validation():
    with pytest.raises(ValueError):
        LogCurveGenerator(n_iterations=2)
    with pytest.raises(ValueError):
        LogCurveGenerator(dip_probability=2.0)
    with pytest.raises(ValueError):
        LogCurveGenerator(noise_sigma=-1.0)


def test_logcurve_validation():
    with pytest.raises(ValueError):
        LogCurve(values=np.array([1.0]), initial=1.0, final=1.0, ideal_stop=0)
    with pytest.raises(ValueError):
        LogCurve(values=np.array([1.0, 2.0]), initial=1.0, final=2.0, ideal_stop=5)
