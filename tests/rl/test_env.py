"""Gym-style spaces and environment contract."""

import numpy as np
import pytest

from repro.rl import Box, Discrete, Env


def test_discrete_space(rng):
    space = Discrete(4)
    assert space.contains(0) and space.contains(3)
    assert not space.contains(4) and not space.contains(-1)
    assert not space.contains("1")
    assert all(space.contains(space.sample(rng)) for _ in range(20))
    with pytest.raises(ValueError):
        Discrete(0)


def test_box_space(rng):
    space = Box(low=-1.0, high=1.0, shape=(3,))
    assert space.contains(np.zeros(3))
    assert not space.contains(np.full(3, 2.0))
    assert not space.contains(np.zeros(4))
    assert all(space.contains(space.sample(rng)) for _ in range(20))
    with pytest.raises(ValueError):
        Box(low=1.0, high=0.0, shape=(2,))
    with pytest.raises(ValueError):
        Box(low=0.0, high=1.0, shape=(0,))


def test_env_contract():
    class Counter(Env):
        observation_space = Box(0.0, 10.0, (1,))
        action_space = Discrete(2)

        def __init__(self):
            self.t = 0

        def reset(self, rng):
            self.t = 0
            return np.array([0.0])

        def step(self, action):
            self.t += action
            return np.array([float(self.t)]), float(action), self.t >= 3, {}

    env = Counter()
    obs = env.reset(np.random.default_rng(0))
    assert env.observation_space.contains(obs)
    total = 0.0
    done = False
    while not done:
        obs, reward, done, info = env.step(1)
        total += reward
    assert total == 3.0


def test_env_is_abstract():
    with pytest.raises(TypeError):
        Env()
