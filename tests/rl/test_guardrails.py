"""Guardrail primitives: weight scans, the loss-divergence monitor, trip
bookkeeping/dedup, and checkpoint schema validation."""

import numpy as np
import pytest

from repro.rl.guardrails import (
    CHECKPOINT_VERSION,
    CheckpointError,
    GuardrailMonitor,
    LossDivergenceMonitor,
    corrupt_network,
    network_weight_issue,
    validate_agent_checkpoint,
)
from repro.rl.nn import MLP

pytestmark = pytest.mark.guardrails


def make_net(seed: int = 0) -> MLP:
    return MLP([4, 8, 2], rng=np.random.default_rng(seed))


# ---------------------------------------------------------------------------
# weight scans
# ---------------------------------------------------------------------------


def test_healthy_network_passes_the_scan():
    assert network_weight_issue(make_net()) is None


def test_scan_is_a_pure_read():
    net = make_net()
    before = [layer.weight.copy() for layer in net.layers]
    network_weight_issue(net)
    for layer, saved in zip(net.layers, before):
        assert np.array_equal(layer.weight, saved)


def test_nan_corruption_is_detected():
    net = make_net()
    corrupt_network(net, "nan-weights")
    issue = network_weight_issue(net)
    assert issue is not None and "non-finite" in issue


def test_explosion_corruption_is_detected():
    net = make_net()
    corrupt_network(net, "explode-weights")
    issue = network_weight_issue(net)
    assert issue is not None and "exploded" in issue


def test_single_poisoned_weight_is_enough():
    net = make_net()
    net.layers[1].weight[0, 0] = float("inf")
    assert network_weight_issue(net) is not None


def test_unknown_corruption_mode_rejected():
    with pytest.raises(ValueError):
        corrupt_network(make_net(), "melt")


# ---------------------------------------------------------------------------
# loss-divergence monitor
# ---------------------------------------------------------------------------


def test_monitor_accepts_a_healthy_stream():
    monitor = LossDivergenceMonitor(divergence_factor=100.0, warmup=3)
    for loss in [1.0, 0.8, 0.9, 0.7, 0.85, 0.6]:
        assert monitor.observe(loss, grad_norm=1.0) is None


def test_monitor_ignores_missing_telemetry():
    monitor = LossDivergenceMonitor()
    assert monitor.observe(None) is None


def test_monitor_trips_on_divergence_after_warmup():
    monitor = LossDivergenceMonitor(divergence_factor=100.0, warmup=3)
    for loss in [1.0, 1.0, 1.0]:
        assert monitor.observe(loss) is None
    reason = monitor.observe(1e5)
    assert reason is not None and "divergence" in reason


def test_monitor_is_quiet_during_warmup():
    """A wild early loss establishes the baseline instead of tripping."""
    monitor = LossDivergenceMonitor(divergence_factor=100.0, warmup=5)
    assert monitor.observe(1e6) is None


def test_monitor_trips_on_non_finite_loss_immediately():
    monitor = LossDivergenceMonitor()
    reason = monitor.observe(float("nan"))
    assert reason is not None and "non-finite" in reason


def test_monitor_trips_on_gradient_explosion():
    monitor = LossDivergenceMonitor(grad_limit=1e3)
    reason = monitor.observe(1.0, grad_norm=1e9)
    assert reason is not None and "gradient explosion" in reason


def test_monitor_reset_restarts_warmup():
    monitor = LossDivergenceMonitor(divergence_factor=10.0, warmup=1)
    assert monitor.observe(1.0) is None
    assert monitor.observe(1e4) is not None
    monitor.reset()
    assert monitor.observe(1e4) is None  # back in warmup


def test_monitor_parameter_validation():
    with pytest.raises(ValueError):
        LossDivergenceMonitor(divergence_factor=1.0)
    with pytest.raises(ValueError):
        LossDivergenceMonitor(grad_limit=0)
    with pytest.raises(ValueError):
        LossDivergenceMonitor(warmup=0)


# ---------------------------------------------------------------------------
# trip bookkeeping
# ---------------------------------------------------------------------------


def test_monitor_records_every_trip():
    monitor = GuardrailMonitor()
    monitor.trip("subset-picker", "non-finite-weights", "layer 0", iteration=3)
    monitor.trip("subset-picker", "non-finite-weights", "layer 0", iteration=4)
    assert len(monitor.trips) == 2
    assert monitor.tripped()
    assert monitor.tripped("subset-picker")
    assert not monitor.tripped("early-stopper")


def test_warnings_are_deduplicated_per_guardrail_and_kind():
    """A re-tripping guardrail (NaN nets are scanned every call) emits
    exactly one warning line per distinct failure class."""
    monitor = GuardrailMonitor()
    for it in range(10):
        monitor.trip("subset-picker", "non-finite-weights", "layer 0", iteration=it)
    monitor.trip("early-stopper", "non-finite-weights", "layer 0", iteration=2)
    warnings = monitor.drain_warnings()
    assert len(warnings) == 2
    assert monitor.drain_warnings() == []  # drained


def test_trip_string_is_self_describing():
    monitor = GuardrailMonitor()
    trip = monitor.trip("early-stopper", "degenerate-policy", "stop at t=1", iteration=1)
    assert str(trip) == "early-stopper:degenerate-policy at iteration 1 (stop at t=1)"


def test_describe_counts_repeats():
    monitor = GuardrailMonitor()
    assert monitor.describe() == "clean"
    monitor.trip("subset-picker", "invalid-output", "empty subset")
    monitor.trip("subset-picker", "invalid-output", "empty subset")
    assert "x2" in monitor.describe()


def test_reset_rearms_dedup():
    monitor = GuardrailMonitor()
    monitor.trip("subset-picker", "invalid-output", "empty subset")
    monitor.drain_warnings()
    monitor.reset()
    assert monitor.trips == ()
    monitor.trip("subset-picker", "invalid-output", "empty subset")
    assert len(monitor.drain_warnings()) == 1


# ---------------------------------------------------------------------------
# checkpoint validation
# ---------------------------------------------------------------------------


def valid_payload() -> dict:
    return {
        "checkpoint_version": np.array(CHECKPOINT_VERSION),
        "impact_scores": np.array([0.5, 0.3, 0.2]),
        "smart_w0": np.zeros((4, 4)),
        "stop_w0": np.zeros((4, 4)),
    }


def test_valid_payload_passes():
    validate_agent_checkpoint(valid_payload())


def test_legacy_payload_without_version_passes():
    payload = valid_payload()
    del payload["checkpoint_version"]
    validate_agent_checkpoint(payload)


def test_future_version_rejected():
    payload = valid_payload()
    payload["checkpoint_version"] = np.array(CHECKPOINT_VERSION + 1)
    with pytest.raises(CheckpointError, match="newer than this build"):
        validate_agent_checkpoint(payload)


@pytest.mark.parametrize("missing", ["impact_scores", "smart_w0", "stop_w0"])
def test_missing_schema_keys_rejected(missing):
    payload = valid_payload()
    del payload[missing]
    with pytest.raises(CheckpointError):
        validate_agent_checkpoint(payload)


def test_nan_poisoned_weights_rejected():
    payload = valid_payload()
    payload["smart_w0"][1, 1] = float("nan")
    with pytest.raises(CheckpointError, match="non-finite"):
        validate_agent_checkpoint(payload)


def test_degenerate_impact_scores_rejected():
    payload = valid_payload()
    payload["impact_scores"] = np.zeros(3)
    with pytest.raises(CheckpointError):
        validate_agent_checkpoint(payload)
    payload["impact_scores"] = np.array([0.5, -0.1, 0.6])
    with pytest.raises(CheckpointError):
        validate_agent_checkpoint(payload)
