"""Neural-network substrate: layers, backprop, Adam, checkpointing."""

import numpy as np
import pytest

from repro.rl.nn import ACTIVATIONS, Adam, Dense, MLP


def test_known_activations():
    assert set(ACTIVATIONS) == {"relu", "tanh", "linear", "sigmoid"}


def test_activation_gradients_numerically(rng):
    x = rng.normal(size=(50,))
    eps = 1e-6
    for name, (fn, grad) in ACTIVATIONS.items():
        numeric = (fn(x + eps) - fn(x - eps)) / (2 * eps)
        assert np.allclose(grad(x), numeric, atol=1e-4), name


def test_dense_forward_shape(rng):
    layer = Dense(4, 3, "relu", rng)
    out = layer.forward(rng.normal(size=(10, 4)))
    assert out.shape == (10, 3)
    assert np.all(out >= 0)


def test_dense_rejects_bad_args(rng):
    with pytest.raises(ValueError):
        Dense(0, 3, "relu", rng)
    with pytest.raises(ValueError):
        Dense(3, 3, "softmax", rng)


def test_dense_backward_before_forward(rng):
    layer = Dense(2, 2, "linear", rng)
    with pytest.raises(RuntimeError):
        layer.backward(np.ones((1, 2)))


def test_mlp_gradient_check(rng):
    """Numeric gradient check through a 2-layer net."""
    net = MLP([3, 5, 2], rng, hidden_activation="tanh", learning_rate=1e-9)
    x = rng.normal(size=(4, 3))
    y = rng.normal(size=(4, 2))

    def loss():
        pred = np.atleast_2d(net(x))
        return float(((pred - y) ** 2).mean())

    base_w = net.layers[0].weight.copy()
    eps = 1e-5
    # analytic gradient via a train step with tiny LR: capture grads
    # indirectly by comparing loss decrease direction on one weight.
    i, j = 1, 2
    net.layers[0].weight[i, j] = base_w[i, j] + eps
    up = loss()
    net.layers[0].weight[i, j] = base_w[i, j] - eps
    down = loss()
    numeric = (up - down) / (2 * eps)
    net.layers[0].weight[i, j] = base_w[i, j]
    # One SGD-ish step should move the weight against the gradient sign.
    before = net.layers[0].weight[i, j]
    net.train_batch(x, y)
    after = net.layers[0].weight[i, j]
    if abs(numeric) > 1e-6:
        assert np.sign(before - after) == np.sign(numeric)


def test_mlp_learns_linear_function(rng):
    net = MLP([2, 32, 1], rng, learning_rate=3e-3)
    x = rng.uniform(-1, 1, (256, 2))
    y = x[:, :1] * 2.0 - x[:, 1:] * 0.5
    losses = net.fit(x, y, epochs=60, batch_size=32, rng=rng)
    assert losses[-1] < 0.01
    assert losses[-1] < losses[0]


def test_mlp_single_sample_shape(rng):
    net = MLP([3, 4, 2], rng)
    out = net(np.zeros(3))
    assert out.shape == (2,)
    batch = net(np.zeros((5, 3)))
    assert batch.shape == (5, 2)


def test_nan_masked_targets_train_only_their_head(rng):
    net = MLP([2, 8, 3], rng, learning_rate=1e-2)
    x = rng.normal(size=(16, 2))
    y = np.full((16, 3), np.nan)
    y[:, 1] = 1.0  # only head 1 has targets
    for _ in range(600):
        net.train_batch(x, y)
    after = np.asarray(net(x))
    assert np.allclose(after[:, 1], 1.0, atol=0.2)


def test_all_nan_targets_are_a_noop(rng):
    net = MLP([2, 8, 3], rng, learning_rate=1e-2)
    x = rng.normal(size=(8, 2))
    before = {k: v.copy() for k, v in net.get_weights().items()}
    loss = net.train_batch(x, np.full((8, 3), np.nan))
    assert loss == 0.0
    for k, v in net.get_weights().items():
        assert np.allclose(v, before[k])


def test_weight_roundtrip(rng):
    a = MLP([2, 4, 1], rng)
    b = MLP([2, 4, 1], rng)
    b.set_weights(a.get_weights())
    x = rng.normal(size=(6, 2))
    assert np.allclose(a(x), b(x))
    b.copy_from(a)
    assert np.allclose(a(x), b(x))


def test_weight_shape_mismatch(rng):
    a = MLP([2, 4, 1], rng)
    b = MLP([2, 5, 1], rng)
    with pytest.raises(ValueError):
        b.set_weights(a.get_weights())


def test_mlp_validation(rng):
    with pytest.raises(ValueError):
        MLP([3], rng)
    net = MLP([2, 2], rng)
    with pytest.raises(ValueError):
        net.train_batch(np.zeros((2, 2)), np.zeros((2, 3)))
    with pytest.raises(ValueError):
        net.fit(np.zeros((2, 2)), np.zeros((2, 2)), epochs=0, batch_size=1, rng=rng)


def test_adam_validation():
    with pytest.raises(ValueError):
        Adam([np.zeros(2)], learning_rate=0)
    opt = Adam([np.zeros(2)])
    with pytest.raises(ValueError):
        opt.step([np.zeros(2), np.zeros(2)])


def test_adam_descends_quadratic():
    w = np.array([5.0, -3.0])
    opt = Adam([w], learning_rate=0.1)
    for _ in range(500):
        opt.step([2 * w])  # grad of ||w||^2
    assert np.linalg.norm(w) < 0.1
