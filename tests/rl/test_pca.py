"""PCA and impact analysis."""

import numpy as np
import pytest

from repro.rl.pca import (
    correlation_impact,
    parameter_impact,
    principal_components,
)


def test_pca_recovers_dominant_direction(rng):
    # Data stretched along [1, 1]/sqrt(2).
    base = rng.normal(size=(500, 1))
    data = np.hstack([base, base]) + rng.normal(scale=0.05, size=(500, 2))
    res = principal_components(data)
    first = res.components[:, 0]
    assert abs(abs(first @ np.array([1, 1]) / np.sqrt(2)) - 1.0) < 0.05
    assert res.explained_variance[0] > res.explained_variance[1]
    assert res.explained_variance_ratio.sum() == pytest.approx(1.0)


def test_pca_validation():
    with pytest.raises(ValueError):
        principal_components(np.zeros((1, 3)))
    with pytest.raises(ValueError):
        principal_components(np.zeros(5))


def test_parameter_impact_finds_driver(rng):
    x = rng.uniform(0, 1, (300, 5))
    perf = 4.0 * x[:, 2] + rng.normal(scale=0.05, size=300)
    impact = parameter_impact(x, perf)
    assert impact.shape == (5,)
    assert impact.sum() == pytest.approx(1.0)
    assert np.argmax(impact) == 2


def test_parameter_impact_two_drivers(rng):
    x = rng.uniform(0, 1, (400, 4))
    perf = 2.0 * x[:, 0] + 1.0 * x[:, 3] + rng.normal(scale=0.05, size=400)
    impact = parameter_impact(x, perf)
    assert set(np.argsort(impact)[-2:]) == {0, 3}


def test_parameter_impact_degenerate_perf_uniform(rng):
    x = rng.uniform(0, 1, (50, 3))
    perf = np.full(50, 7.0)
    impact = parameter_impact(x, perf)
    assert np.allclose(impact, 1 / 3, atol=0.15)


def test_parameter_impact_validation(rng):
    x = rng.uniform(size=(10, 3))
    with pytest.raises(ValueError):
        parameter_impact(x, np.zeros(9))
    with pytest.raises(ValueError):
        parameter_impact(x[:2], np.zeros(2))
    with pytest.raises(ValueError):
        parameter_impact(np.zeros(10), np.zeros(10))


def test_correlation_impact_agrees_on_driver(rng):
    x = rng.uniform(0, 1, (300, 4))
    perf = 3.0 * x[:, 1] + rng.normal(scale=0.1, size=300)
    corr = correlation_impact(x, perf)
    assert np.argmax(corr) == 1
    assert corr.sum() == pytest.approx(1.0)


def test_correlation_impact_validation(rng):
    with pytest.raises(ValueError):
        correlation_impact(rng.uniform(size=(5, 2)), np.zeros(4))
