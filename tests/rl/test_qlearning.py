"""The DQN agent."""

import numpy as np
import pytest

from repro.rl import QLearningAgent, QLearningConfig, Transition


def make_agent(rng, **overrides):
    defaults = dict(state_dim=2, n_actions=2, hidden=(16,), target_sync_every=10)
    defaults.update(overrides)
    return QLearningAgent(QLearningConfig(**defaults), rng)


def test_config_validation():
    with pytest.raises(ValueError):
        QLearningConfig(state_dim=0, n_actions=2)
    with pytest.raises(ValueError):
        QLearningConfig(state_dim=1, n_actions=1, discount=1.5)
    with pytest.raises(ValueError):
        QLearningConfig(state_dim=1, n_actions=1, epsilon_start=0.1, epsilon_end=0.5)


def test_greedy_action_is_argmax(rng):
    agent = make_agent(rng)
    state = np.array([0.3, 0.7])
    q = agent.q_values(state)
    assert agent.act(state, greedy=True) == int(np.argmax(q))


def test_epsilon_decays_to_floor(rng):
    agent = make_agent(rng, epsilon_start=1.0, epsilon_end=0.1, epsilon_decay=0.5)
    for _ in range(20):
        agent.decay_epsilon()
    assert agent.epsilon == pytest.approx(0.1)


def test_train_step_empty_replay_is_noop(rng):
    agent = make_agent(rng)
    assert agent.train_step() is None


def test_observe_validates_state_shape(rng):
    agent = make_agent(rng)
    with pytest.raises(ValueError):
        agent.observe(Transition(np.zeros(3), 0, 0.0, np.zeros(3), True))


def test_learns_a_contextual_rule(rng):
    """Reward action 1 when state[0] > 0.5, else action 0."""
    agent = make_agent(rng)
    for _ in range(600):
        s = rng.uniform(0, 1, 2)
        a = agent.act(s)
        r = 1.0 if a == int(s[0] > 0.5) else 0.0
        agent.observe(Transition(s, a, r, s, True))
        agent.train_step()
        agent.decay_epsilon()
    correct = sum(
        agent.act(np.array([x, 0.5]), greedy=True) == int(x > 0.5)
        for x in np.linspace(0.05, 0.95, 19)
    )
    assert correct >= 16


def test_weight_roundtrip(rng):
    a = make_agent(rng)
    b = make_agent(rng)
    b.set_weights(a.get_weights())
    s = np.array([0.1, 0.9])
    assert np.allclose(a.q_values(s), b.q_values(s))


def test_target_network_syncs(rng):
    agent = make_agent(rng, target_sync_every=5)
    s = np.zeros(2)
    for _ in range(10):
        agent.observe(Transition(s, 0, 1.0, s, True))
    for _ in range(5):
        agent.train_step()
    assert np.allclose(
        agent.q_network(np.zeros(2)), agent.target_network(np.zeros(2))
    )
