"""Replay buffers and the 5-iteration delayed-reward mechanism."""

import numpy as np
import pytest

from repro.rl import DelayedRewardBuffer, ReplayBuffer, Transition


def tr(reward=0.0):
    s = np.zeros(2)
    return Transition(s, 0, reward, s, False)


def test_replay_fifo_capacity():
    buf = ReplayBuffer(capacity=3)
    for i in range(5):
        buf.push(tr(reward=float(i)))
    assert len(buf) == 3
    rewards = {t.reward for t in buf._buf}
    assert rewards == {2.0, 3.0, 4.0}


def test_replay_sampling(rng):
    buf = ReplayBuffer()
    buf.extend(tr(float(i)) for i in range(10))
    batch = buf.sample(4, rng)
    assert len(batch) == 4
    big = buf.sample(100, rng)
    assert len(big) == 10


def test_replay_validation(rng):
    buf = ReplayBuffer()
    with pytest.raises(ValueError):
        buf.sample(1, rng)
    with pytest.raises(ValueError):
        ReplayBuffer(capacity=0)
    buf.push(tr())
    with pytest.raises(ValueError):
        buf.sample(0, rng)
    buf.clear()
    assert len(buf) == 0


def test_delayed_rewards_mature_after_delay():
    buf = DelayedRewardBuffer(delay=5)
    s = np.zeros(1)
    buf.remember(s, 0, iteration=0)
    buf.remember(s, 1, iteration=1)

    matured_early = buf.mature(4, lambda b, n: 99.0, s)
    assert matured_early == []

    matured = buf.mature(5, lambda born, now: float(now - born), s)
    assert len(matured) == 1
    assert matured[0].action == 0
    assert matured[0].reward == 5.0

    matured = buf.mature(6, lambda born, now: float(now - born), s)
    assert len(matured) == 1 and matured[0].action == 1


def test_done_flushes_everything():
    buf = DelayedRewardBuffer(delay=5)
    s = np.zeros(1)
    for t in range(3):
        buf.remember(s, t, iteration=t)
    matured = buf.mature(3, lambda b, n: 1.0, s, done=True)
    assert len(matured) == 3
    assert all(t.done for t in matured)
    assert len(buf) == 0


def test_delay_zero_matures_immediately():
    buf = DelayedRewardBuffer(delay=0)
    s = np.zeros(1)
    buf.remember(s, 0, iteration=7)
    assert len(buf.mature(7, lambda b, n: 1.0, s)) == 1


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        DelayedRewardBuffer(delay=-1)
