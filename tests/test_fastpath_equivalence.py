"""The evaluation fastpath is bit-identical to the legacy slow path.

The trace/replay split, the evaluation cache and the batched GA
evaluation are pure performance work: none of them may change a single
bit of any result.  This module pins that down against a *reference
implementation* -- a verbatim copy of the original single-pass
``run()``/``evaluate()`` loop that traversed the full stack once per
repeat -- and against the fastpath's own off switches, for the paper's
three representative kernels under both seeded noise and the quiet
model.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.iostack import (
    EvaluationCache,
    IOStackSimulator,
    NoiseModel,
    StackConfiguration,
    cori,
)
from repro.iostack.darshan import DarshanReport, PhaseRecord
from repro.iostack.hdf5 import apply_hdf5
from repro.iostack.lustre import serve_lustre, serve_metadata
from repro.iostack.posix import serve_memory, serve_memory_metadata
from repro.iostack.simulator import EvaluationResult
from repro.iostack.mpiio import apply_mpiio
from repro.tuners import HSTuner, NoStop
from repro.workloads import flash, hacc, vpic

WORKLOADS = {"vpic": vpic, "flash": flash, "hacc": hacc}
NOISES = {
    "seeded": lambda: NoiseModel(seed=17),
    "quiet": NoiseModel.quiet,
}


class LegacySimulator(IOStackSimulator):
    """The pre-fastpath simulator: one full stack traversal per run.

    ``run`` below is the original implementation copied verbatim, so the
    equivalence tests compare the fastpath against the exact arithmetic
    it replaced rather than against another formulation of it.
    """

    def run(self, workload, config):
        platform = self.platform.scaled_to(workload.n_nodes)
        hdf5_values = config.layer("hdf5")
        mpiio_values = config.layer("mpiio")
        lustre_values = config.layer("lustre")
        striping_unit = int(lustre_values["striping_unit"])

        report = DarshanReport()
        noise_factor = self.noise.sample_factor()

        for phase in workload.phases():
            phase_io = 0.0
            phase_meta = 0.0

            report.app_bytes_written += phase.bytes_written
            report.app_bytes_read += phase.bytes_read
            report.app_write_ops += phase.write_ops
            report.app_read_ops += phase.read_ops
            if phase.metadata is not None:
                report.meta_ops += phase.metadata.total_ops

            hdf5_out = apply_hdf5(phase, hdf5_values, platform)
            report.overhead_seconds += hdf5_out.overhead_seconds

            for stream in hdf5_out.data:
                if stream.nodes == 0:
                    stream = replace(stream, nodes=platform.n_nodes)
                if phase.tier == "memory":
                    service_seconds = serve_memory(stream, platform).seconds
                    final = stream
                else:
                    mpiio_out = apply_mpiio(
                        stream, mpiio_values, platform, striping_unit
                    )
                    final = mpiio_out.stream
                    service_seconds = (
                        serve_lustre(final, lustre_values, platform).seconds
                        + mpiio_out.overhead_seconds
                    )

                service_seconds *= noise_factor
                phase_io += service_seconds
                if stream.op == "write":
                    report.write_seconds += service_seconds
                    report.posix_bytes_written += final.total_bytes
                    report.posix_write_ops += final.total_ops
                else:
                    report.read_seconds += service_seconds
                    report.posix_bytes_read += final.total_bytes
                    report.posix_read_ops += final.total_ops

            if phase.tier == "memory":
                meta_seconds = serve_memory_metadata(hdf5_out.metadata, platform)
            else:
                meta_seconds = serve_metadata(hdf5_out.metadata, platform)
            meta_seconds *= noise_factor
            phase_meta += meta_seconds
            report.meta_seconds += meta_seconds
            report.compute_seconds += phase.compute_seconds

            report.record_phase(
                PhaseRecord(
                    name=phase.name,
                    bytes_written=phase.bytes_written,
                    bytes_read=phase.bytes_read,
                    write_ops=phase.write_ops,
                    read_ops=phase.read_ops,
                    io_seconds=phase_io,
                    meta_seconds=phase_meta,
                    compute_seconds=phase.compute_seconds,
                )
            )

        return report

    def evaluate(self, workload, config, repeats=3):
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        write_bws = []
        read_bws = []
        report = DarshanReport()
        for _ in range(repeats):
            report = self.run(workload, config)
            write_bws.append(report.write_bandwidth_mbps)
            read_bws.append(report.read_bandwidth_mbps)
        write_bw = sum(write_bws) / repeats
        read_bw = sum(read_bws) / repeats
        alpha = report.alpha
        perf = (1.0 - alpha) * read_bw + alpha * write_bw
        return EvaluationResult(
            perf_mbps=perf,
            write_bandwidth_mbps=write_bw,
            read_bandwidth_mbps=read_bw,
            alpha=alpha,
            charged_seconds=report.runtime_seconds,
            report=report,
        )


def sample_configs(workload_name, n=4):
    rng = np.random.default_rng(abs(hash_name(workload_name)) % 1000)
    return [StackConfiguration.default()] + [
        StackConfiguration.random(rng) for _ in range(n - 1)
    ]


def hash_name(name):
    # stable across processes (unlike str hash)
    return sum(ord(c) * 31**i for i, c in enumerate(name))


@pytest.mark.parametrize("noise_name", sorted(NOISES))
@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_run_matches_reference(workload_name, noise_name):
    workload = WORKLOADS[workload_name]()
    fast = IOStackSimulator(cori(workload.n_nodes), NOISES[noise_name]())
    legacy = LegacySimulator(cori(workload.n_nodes), NOISES[noise_name]())
    for config in sample_configs(workload_name):
        for _ in range(2):  # both draws of the shared noise stream
            assert fast.run(workload, config) == legacy.run(workload, config)
    assert fast.noise._counter == legacy.noise._counter


@pytest.mark.parametrize("noise_name", sorted(NOISES))
@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_evaluate_matches_reference(workload_name, noise_name):
    workload = WORKLOADS[workload_name]()
    fast = IOStackSimulator(cori(workload.n_nodes), NOISES[noise_name]())
    legacy = LegacySimulator(cori(workload.n_nodes), NOISES[noise_name]())
    for config in sample_configs(workload_name):
        a = fast.evaluate(workload, config, repeats=3)
        b = legacy.evaluate(workload, config, repeats=3)
        assert a.perf_mbps == b.perf_mbps
        assert a.write_bandwidth_mbps == b.write_bandwidth_mbps
        assert a.read_bandwidth_mbps == b.read_bandwidth_mbps
        assert a.alpha == b.alpha
        assert a.charged_seconds == b.charged_seconds
        assert a.report == b.report
    assert fast.noise._counter == legacy.noise._counter


def assert_histories_identical(a, b):
    assert a.baseline_perf == b.baseline_perf
    assert len(a.history) == len(b.history)
    for ra, rb in zip(a.history, b.history):
        assert ra.iteration_perf == rb.iteration_perf
        assert ra.best_perf == rb.best_perf
        assert ra.elapsed_minutes == rb.elapsed_minutes
        assert ra.evaluations == rb.evaluations
    assert a.best_perf == b.best_perf
    assert a.best_config == b.best_config
    assert a.total_minutes == b.total_minutes


def tuned(workload, *, noise, legacy=False, **kwargs):
    sim_cls = LegacySimulator if legacy else IOStackSimulator
    sim = sim_cls(cori(workload.n_nodes), noise())
    tuner = HSTuner(
        sim, stopper=NoStop(), rng=np.random.default_rng(7), **kwargs
    )
    return tuner.tune(workload, max_iterations=5)


@pytest.mark.parametrize("noise_name", sorted(NOISES))
@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_tuning_history_matches_legacy_pipeline(workload_name, noise_name):
    """Cache on + batch on (+ thread pool) reproduces, bit for bit, the
    tuning history of the legacy per-individual, per-repeat pipeline."""
    workload = WORKLOADS[workload_name]()
    noise = NOISES[noise_name]
    reference = tuned(
        workload, noise=noise, legacy=True, batch_evaluation=False, cache=None
    )
    fastpath = tuned(
        workload,
        noise=noise,
        cache=EvaluationCache(),
        batch_evaluation=True,
        batch_workers=4,
    )
    assert_histories_identical(reference, fastpath)
    assert fastpath.eval_stats is not None
    assert fastpath.eval_stats.evaluations == reference.total_evaluations + 1


def test_fastpath_switches_are_result_transparent():
    """Every combination of (cache, batch, workers) yields the same run."""
    workload = vpic()
    noise = NOISES["seeded"]
    baseline = tuned(workload, noise=noise, cache=None, batch_evaluation=False)
    variants = [
        tuned(workload, noise=noise, cache=None, batch_evaluation=True),
        tuned(workload, noise=noise, cache=EvaluationCache(), batch_evaluation=False),
        tuned(workload, noise=noise, cache=EvaluationCache(), batch_evaluation=True),
        tuned(
            workload,
            noise=noise,
            cache=EvaluationCache(),
            batch_evaluation=True,
            batch_workers=2,
        ),
    ]
    for variant in variants:
        assert_histories_identical(baseline, variant)
