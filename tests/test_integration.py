"""End-to-end integration: source -> kernel -> tuned configuration.

These tests walk the complete paper pipeline at reduced scale: discover
an I/O kernel from C source, tune it with TunIO (offline-trained agents,
subset picking, RL stopping), and check the outcome against the full
application.
"""

import numpy as np
import pytest

from repro import (
    DiscoveryOptions,
    HSTuner,
    IOStackSimulator,
    LoopReduction,
    NoiseModel,
    NoStop,
    PerfNormalizer,
    StackConfiguration,
    build_tunio,
    cori,
    discover_io,
    train_tunio_agents,
)
from repro.workloads import flash, hacc, vpic
from repro.workloads.sources import canonical_hints, load_source


@pytest.fixture(scope="module")
def stack():
    platform = cori(4)
    sim = IOStackSimulator(platform, NoiseModel(seed=99))
    normalizer = PerfNormalizer.for_platform(platform, 4)
    agents = train_tunio_agents(
        sim, [vpic(), flash(), hacc()], normalizer, rng=np.random.default_rng(99)
    )
    return sim, normalizer, agents


def test_paper_use_case_end_to_end(stack):
    """The Section III-E use case: discover the kernel, tune it, apply
    the found configuration to the full application."""
    sim, normalizer, agents = stack
    hints = canonical_hints("macsio")
    source = load_source("macsio")

    kernel = discover_io(
        source, "macsio",
        DiscoveryOptions(hints=hints, reducers=(LoopReduction(0.01),)),
    )
    kernel_workload = kernel.to_workload()

    tuner = build_tunio(sim, agents, normalizer, rng=np.random.default_rng(17))
    result = tuner.tune(kernel_workload, max_iterations=30)

    # The configuration found on the cheap kernel transfers to the app.
    from repro.discovery import workload_from_source

    app = workload_from_source(kernel.original_source, "macsio-app", hints)
    base = sim.evaluate(app, StackConfiguration.default()).perf_mbps
    tuned = sim.evaluate(app, result.best_config).perf_mbps
    assert tuned > 2.5 * base

    # Tuning the kernel was much cheaper than tuning the app would be:
    kernel_run = sim.evaluate(kernel_workload, StackConfiguration.default())
    app_run = sim.evaluate(app, StackConfiguration.default())
    assert kernel_run.charged_seconds < app_run.charged_seconds / 5


def test_tunio_beats_heuristic_on_time_or_perf(stack):
    """TunIO must not lose on both axes to the heuristic baseline."""
    from repro.tuners import HeuristicStopper

    sim, normalizer, agents = stack
    w = flash()
    tunio = build_tunio(sim, agents, normalizer, rng=np.random.default_rng(23))
    r_tunio = tunio.tune(w, max_iterations=40)
    baseline = HSTuner(sim, stopper=HeuristicStopper(), rng=np.random.default_rng(23))
    r_base = baseline.tune(w, max_iterations=40)
    assert (
        r_tunio.best_perf >= 0.95 * r_base.best_perf
        or r_tunio.total_minutes <= r_base.total_minutes
    )


def test_xml_config_round_trip_through_tuning(stack):
    """The H5Tuner override file produced from a tuning run re-parses to
    the same configuration (how a real pipeline would consume it)."""
    from repro.iostack import from_xml, to_xml

    sim, normalizer, agents = stack
    tuner = HSTuner(sim, stopper=NoStop(), rng=np.random.default_rng(31))
    result = tuner.tune(vpic(), max_iterations=6)
    xml = to_xml(result.best_config)
    assert from_xml(xml) == result.best_config


def test_offline_agents_transfer_across_workloads(stack):
    """Agents trained on VPIC/FLASH/HACC drive tuning of a workload they
    never saw (MACSio) without errors and with real gains."""
    sim, normalizer, agents = stack
    from repro.workloads import macsio_vpic_dipole

    tuner = build_tunio(sim, agents, normalizer, rng=np.random.default_rng(41))
    res = tuner.tune(macsio_vpic_dipole(), max_iterations=20)
    assert res.best_perf > 2 * res.baseline_perf


def test_tunio_pipeline_is_deterministic(stack):
    """Two TunIO runs from identical seeds and fresh agent clones agree
    bit-for-bit on the tuning trajectory."""
    import numpy as np

    from repro.core import build_tunio
    from repro.core.early_stopping import EarlyStoppingAgent
    from repro.core.offline_training import TunIOAgents
    from repro.core.smart_config import SmartConfigAgent
    from repro.iostack import IOStackSimulator, NoiseModel, cori

    sim, normalizer, agents = stack

    def clone():
        smart = SmartConfigAgent(
            space=agents.smart_config.space,
            normalizer=normalizer,
            rng=np.random.default_rng(555),
        )
        smart.set_state(agents.smart_config.get_state())
        stopper = EarlyStoppingAgent(rng=np.random.default_rng(556))
        stopper.set_weights(agents.early_stopper.get_weights())
        return TunIOAgents(smart, stopper, agents.impact_scores.copy())

    def run():
        fresh_sim = IOStackSimulator(cori(4), NoiseModel(seed=777))
        tuner = build_tunio(
            fresh_sim, clone(), normalizer, rng=np.random.default_rng(888)
        )
        return tuner.tune(flash(), max_iterations=12)

    a, b = run(), run()
    assert np.array_equal(a.perf_series(), b.perf_series())
    assert a.best_config == b.best_config
    assert a.stopped_at == b.stopped_at
