"""Cross-module property-based tests (hypothesis).

These pin down the invariants the tuning pipeline silently relies on:
the simulator's conservation and bounding laws, kernel-reduction
extrapolation identities, GA monotonicity under elitism, and the
formatter/parser contract on generated programs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.iostack import (
    IOStackSimulator,
    NoiseModel,
    StackConfiguration,
    TUNED_SPACE,
    cori,
)
from tests.conftest import make_workload

SIM = IOStackSimulator(cori(2), NoiseModel.quiet())


def random_config(seed: int) -> StackConfiguration:
    return StackConfiguration.random(np.random.default_rng(seed))


# ---------------------------------------------------------------------------
# simulator invariants
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_simulator_conservation_laws(seed):
    """For any configuration: positive runtime, write bytes never lost,
    and achieved bandwidth below the hardware's aggregate ceiling."""
    w = make_workload()
    config = random_config(seed)
    report = SIM.run(w, config)
    assert report.runtime_seconds > 0
    assert report.write_seconds > 0
    # Writes may be inflated (read-modify-write) but never dropped.
    assert report.posix_bytes_written >= report.app_bytes_written
    # Bandwidth cannot exceed the platform's aggregate OST peak.
    ceiling = SIM.platform.aggregate_ost_bandwidth / 1e6  # MB/s
    assert report.write_bandwidth_mbps <= ceiling * 1.01


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_more_data_takes_longer(seed):
    """Doubling the I/O volume never makes the run faster."""
    config = random_config(seed)
    small = make_workload(writes_per_proc=32)
    big = make_workload(writes_per_proc=64)
    t_small = SIM.run(small, config).io_seconds
    t_big = SIM.run(big, config).io_seconds
    assert t_big >= t_small * 0.99


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_memory_tier_never_slower_than_lustre(seed):
    config = random_config(seed)
    w = make_workload()
    lustre = SIM.run(w, config).io_seconds
    memory = SIM.run(w.switched_to_memory(), config).io_seconds
    assert memory <= lustre


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_evaluation_deterministic_under_quiet_noise(seed):
    config = random_config(seed)
    w = make_workload()
    a = SIM.evaluate(w, config, repeats=2)
    b = SIM.evaluate(w, config, repeats=2)
    assert a.perf_mbps == b.perf_mbps
    assert a.charged_seconds == b.charged_seconds


# ---------------------------------------------------------------------------
# kernel-reduction identities
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    st.integers(2, 200),
    st.floats(0.005, 0.5),
)
def test_loop_reduction_extrapolation_identity(n_iterations, fraction):
    """reduced metrics x extrapolation ~= original metrics, up to the
    ceil-rounding overcount the paper describes (bounded by one extra
    iteration's worth per loop)."""
    w = make_workload(n_iterations=n_iterations)
    reduced = w.loop_reduced(fraction)
    if reduced is w:  # too small to reduce
        return
    factor = reduced.extrapolation_factor
    extrapolated = reduced.bytes_written * factor
    # The kept leading block over-weights the first iteration: the error
    # is at most ~one iteration's share.
    per_iter = w.bytes_written / n_iterations
    assert extrapolated >= w.bytes_written * 0.99
    assert extrapolated <= w.bytes_written + factor * per_iter


@settings(max_examples=25, deadline=None)
@given(st.floats(0.001, 1.0))
def test_loop_reduction_never_increases_volume(fraction):
    w = make_workload(n_iterations=100)
    reduced = w.loop_reduced(fraction)
    assert reduced.bytes_written <= w.bytes_written
    assert reduced.write_ops <= w.write_ops
    assert reduced.compute_seconds <= w.compute_seconds + 1e-9


# ---------------------------------------------------------------------------
# GA monotonicity
# ---------------------------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_elitism_makes_best_monotone(seed):
    from tests.ga.test_engine import make_engine

    engine = make_engine(seed=seed, elites=1)
    best = [s.best_fitness for s in engine.run(12)]
    assert all(b >= a for a, b in zip(best, best[1:]))


# ---------------------------------------------------------------------------
# discovery contract on generated programs
# ---------------------------------------------------------------------------


@st.composite
def mini_program(draw):
    """A random small C program mixing I/O, compute and logging."""
    n_vars = draw(st.integers(1, 4))
    decls = [f"    double v{i} = {i}.0;" for i in range(n_vars)]
    body = []
    for i in range(draw(st.integers(1, 5))):
        kind = draw(st.sampled_from(["io", "compute", "log", "loop"]))
        if kind == "io":
            body.append(
                f"    H5Dwrite(did, H5T_NATIVE_DOUBLE, H5S_ALL, H5S_ALL, H5P_DEFAULT, buf{i % n_vars});"
            )
        elif kind == "compute":
            a, b = draw(st.integers(0, n_vars - 1)), draw(st.integers(0, n_vars - 1))
            body.append(f"    v{a} = v{a} * 1.5 + v{b};")
        elif kind == "log":
            body.append(f'    fprintf(logf, "step {i}");')
        else:
            bound = draw(st.integers(2, 50))
            body.append(
                f"    for (int k{i} = 0; k{i} < {bound}; k{i}++)\n"
                f"    {{\n"
                f"        H5Dwrite(did, H5T_NATIVE_DOUBLE, H5S_ALL, H5S_ALL, H5P_DEFAULT, buf{i % n_vars});\n"
                f"    }}"
            )
    buffers = [
        f"    double *buf{i} = (double *) malloc(64 * sizeof(double));"
        for i in range(n_vars)
    ]
    return (
        "#include <hdf5.h>\n#include <stdio.h>\nint main(void)\n{\n"
        + "\n".join(decls + buffers)
        + '\n    FILE *logf = fopen("x.log", "w");\n'
        + '    hid_t did = H5Fcreate("o.h5", H5F_ACC_TRUNC, H5P_DEFAULT, H5P_DEFAULT);\n'
        + "\n".join(body)
        + "\n    return 0;\n}\n"
    )


@settings(max_examples=30, deadline=None)
@given(mini_program())
def test_discovery_contract_on_generated_programs(source):
    """On any generated program: formatting is idempotent, the kernel is
    brace-balanced, keeps every H5 call, and drops every fprintf."""
    from repro.discovery import discover_io, format_source

    formatted = format_source(source)
    assert format_source(formatted) == formatted

    kernel = discover_io(source, "generated")
    assert kernel.source.count("{") == kernel.source.count("}")
    assert kernel.source.count("H5Dwrite") == formatted.count("H5Dwrite")
    assert "fprintf" not in kernel.source


@settings(max_examples=15, deadline=None)
@given(mini_program(), st.floats(0.01, 0.5))
def test_loop_reduction_on_generated_programs(source, fraction):
    """Loop reduction never grows any loop bound and keeps the source
    reparsable."""
    from repro.discovery import LoopReduction, parse_source

    outcome = LoopReduction(fraction).apply(source)
    parse_source(outcome.source)  # must stay parsable
    for record in outcome.reductions:
        assert 1 <= record.reduced_iterations < record.original_iterations
        assert record.scale > 1.0
