"""Tuning records and results."""

import numpy as np
import pytest

from repro.tuners.base import IterationRecord, TuningResult


def record(i, perf, minutes):
    return IterationRecord(
        iteration=i, iteration_perf=perf, best_perf=perf,
        elapsed_minutes=minutes, evaluations=5,
    )


def make_result():
    res = TuningResult(tuner_name="t", workload_name="w", baseline_perf=100.0)
    res.history = [record(0, 150.0, 10.0), record(1, 200.0, 20.0), record(2, 400.0, 30.0)]
    return res


def test_record_validation():
    with pytest.raises(ValueError):
        record(-1, 1.0, 1.0)
    with pytest.raises(ValueError):
        record(0, 1.0, -1.0)


def test_result_properties():
    res = make_result()
    assert res.best_perf == 400.0
    assert res.total_minutes == 30.0
    assert res.total_evaluations == 15
    assert res.gain == 300.0


def test_empty_result_falls_back_to_baseline():
    res = TuningResult(tuner_name="t", workload_name="w", baseline_perf=50.0)
    assert res.best_perf == 50.0
    assert res.total_minutes == 0.0
    assert res.gain == 0.0


def test_series_accessors():
    res = make_result()
    assert np.array_equal(res.perf_series(), [150.0, 200.0, 400.0])
    assert np.array_equal(res.minutes_series(), [10.0, 20.0, 30.0])


def test_reach_queries():
    res = make_result()
    assert res.iterations_to_reach(200.0) == 1
    assert res.minutes_to_reach(200.0) == 20.0
    assert res.iterations_to_reach(999.0) is None
    assert res.minutes_to_reach(999.0) is None
