"""The HSTuner GA pipeline."""

import numpy as np
import pytest

from repro.iostack import IOStackSimulator, NoiseModel, cori
from repro.tuners import HeuristicStopper, HSTuner, NoStop
from repro.tuners.hstuner import HSTuner as HSTunerClass
from tests.conftest import make_workload


@pytest.fixture
def sim():
    return IOStackSimulator(cori(2), NoiseModel(sigma=0.05, spike_probability=0.0, seed=3))


def small_tuner(sim, seed=0, **kwargs):
    return HSTuner(sim, rng=np.random.default_rng(seed), **kwargs)


def test_tuning_improves_over_baseline(sim):
    tuner = small_tuner(sim)
    res = tuner.tune(make_workload(), max_iterations=15)
    assert res.best_perf > 1.5 * res.baseline_perf
    assert res.best_config is not None
    assert res.stop_reason == "budget"
    assert len(res.history) == 15


def test_best_perf_is_monotone(sim):
    res = small_tuner(sim).tune(make_workload(), max_iterations=12)
    series = res.perf_series()
    assert all(b >= a for a, b in zip(series, series[1:]))


def test_clock_charges_every_evaluation(sim):
    tuner = small_tuner(sim)
    res = tuner.tune(make_workload(), max_iterations=5)
    assert tuner.clock.n_evaluations == res.total_evaluations
    assert res.total_minutes > 0
    minutes = res.minutes_series()
    assert all(b > a for a, b in zip(minutes, minutes[1:]))


def test_stopper_ends_run(sim):
    tuner = small_tuner(sim, stopper=HeuristicStopper(threshold=0.05, window=3))
    res = tuner.tune(make_workload(), max_iterations=40)
    assert res.stop_reason == "stopper"
    assert res.stopped_at is not None
    assert len(res.history) < 40


def test_seeded_runs_reproduce(sim):
    w = make_workload()
    a = small_tuner(IOStackSimulator(cori(2), NoiseModel(seed=5)), seed=9).tune(w, 8)
    b = small_tuner(IOStackSimulator(cori(2), NoiseModel(seed=5)), seed=9).tune(w, 8)
    assert np.array_equal(a.perf_series(), b.perf_series())
    assert a.best_config == b.best_config


def test_subset_restriction_pins_other_genes(sim):
    class OnlyStripes(HSTunerClass):
        def _select_subset(self, iteration, history):
            return ("striping_factor",)

    tuner = OnlyStripes(sim, rng=np.random.default_rng(1))
    res = tuner.tune(make_workload(), max_iterations=10)
    changed = res.best_config.changed_parameters()
    assert set(changed) <= {"striping_factor"}
    assert all(len(r.tuned_parameters) == 1 for r in res.history)


def test_resume_continues_history(sim):
    tuner = small_tuner(sim)
    first = tuner.tune(make_workload(), max_iterations=4)
    minutes_before = first.total_minutes
    resumed = tuner.resume(extra_iterations=3)
    assert resumed is first
    assert len(resumed.history) == 7
    assert resumed.total_minutes > minutes_before
    assert [r.iteration for r in resumed.history] == list(range(7))


def test_resume_without_tune_rejected(sim):
    with pytest.raises(RuntimeError):
        small_tuner(sim).resume(3)
    tuner = small_tuner(sim)
    tuner.tune(make_workload(), max_iterations=2)
    with pytest.raises(ValueError):
        tuner.resume(0)


def test_invalid_budget(sim):
    with pytest.raises(ValueError):
        small_tuner(sim).tune(make_workload(), max_iterations=0)


# -- initial population (no wasted duplicate of the seed) -----------------------


def test_perturbed_always_differs_from_seed(sim):
    from repro.ga import Individual

    tuner = small_tuner(sim)
    seed_ind = Individual(tuner.space.encode(tuner.space.default_values()))
    rng = np.random.default_rng(0)
    for _ in range(300):
        assert not tuner._perturbed(seed_ind, rng).same_genome(seed_ind)


def test_initial_population_contains_default_only_once(sim):
    tuner = small_tuner(sim)
    tuner.tune(make_workload(), max_iterations=1)
    default = tuner.space.encode(tuner.space.default_values())
    population = tuner._engine.population  # still generation 0 after 1 step
    assert np.array_equal(population[0].genome, default)
    for ind in population[1:]:
        assert not np.array_equal(ind.genome, default)


# -- fastpath accounting --------------------------------------------------------


def test_eval_stats_surfaced_on_result(sim):
    from repro.iostack import EvaluationCache

    cache = EvaluationCache()
    tuner = small_tuner(sim, cache=cache)
    res = tuner.tune(make_workload(), max_iterations=6)
    stats = res.eval_stats
    assert stats is not None
    # every evaluation (baseline included) did `repeats` replays
    assert stats.evaluations == res.total_evaluations + 1
    assert stats.trace_replays == tuner.repeats * stats.evaluations
    # with a cache, traversals happen only on misses
    assert stats.cache_misses == stats.traces_built
    assert stats.trace_reuse == stats.trace_replays - stats.traces_built
    assert res.cache_hit_rate == stats.cache_hit_rate
    assert res.trace_reuse_count == stats.trace_reuse


def test_eval_stats_without_cache(sim):
    res = small_tuner(sim).tune(make_workload(), max_iterations=3)
    assert res.eval_stats is not None
    assert res.eval_stats.cache_hits == 0
    assert res.eval_stats.cache_misses == 0
    assert res.cache_hit_rate == 0.0


def test_tuning_revisits_hit_the_cache(sim):
    from repro.iostack import EvaluationCache

    cache = EvaluationCache()
    tuner = small_tuner(sim, cache=cache)
    res = tuner.tune(make_workload(), max_iterations=10)
    assert res.eval_stats.cache_hits > 0  # the GA re-draws configurations
    assert res.trace_reuse_count > 0


def test_stats_window_resets_between_tunes(sim):
    from repro.iostack import EvaluationCache

    tuner = small_tuner(sim, cache=EvaluationCache())
    first = tuner.tune(make_workload(), max_iterations=3)
    second = tuner.tune(make_workload(), max_iterations=3)
    # counters are deltas over the run, not cumulative across runs
    assert second.eval_stats.evaluations == first.eval_stats.evaluations
    assert (
        second.eval_stats.trace_replays
        == tuner.repeats * second.eval_stats.evaluations
    )
    # the second run starts from the same default baseline: cache hit
    assert second.eval_stats.cache_hits >= 1


def test_batch_workers_do_not_change_results(sim):
    from repro.iostack import EvaluationCache, IOStackSimulator, NoiseModel, cori

    def run(workers):
        simulator = IOStackSimulator(cori(2), NoiseModel(seed=5))
        tuner = small_tuner(
            simulator, seed=9, cache=EvaluationCache(), batch_workers=workers
        )
        return tuner.tune(make_workload(), max_iterations=6)

    serial = run(None)
    pooled = run(4)
    assert np.array_equal(serial.perf_series(), pooled.perf_series())
    assert serial.best_config == pooled.best_config
    assert serial.total_minutes == pooled.total_minutes
