"""The tuning journal: crash-safe writes, replay, bit-identical resume,
and tuning under injected faults (the robustness acceptance tests)."""

import json
import threading

import numpy as np
import pytest

from repro.iostack import (
    EvaluationCache,
    FaultPlan,
    IOStackSimulator,
    NoiseModel,
    StackConfiguration,
    cori,
)
from repro.iostack.faults import TransientFaultError
from repro.tuners.hstuner import HSTuner
from repro.tuners.journal import (
    JOURNAL_VERSION,
    BaselineRecord,
    JournalError,
    JournalWriter,
    ReplayCursor,
    load_journal,
)
from repro.tuners.resilience import HarnessError, RetryPolicy
from repro.tuners.stoppers import NoStop
from tests.conftest import make_workload


def make_tuner(faults=None, cache=True, **kwargs):
    """A small deterministic tuner; call twice for identical twins."""
    sim = IOStackSimulator(cori(2), NoiseModel(seed=11), faults=faults)
    kwargs.setdefault("population_size", 4)
    kwargs.setdefault("batch_workers", None)
    return HSTuner(
        sim,
        stopper=NoStop(),
        rng=np.random.default_rng(7),
        cache=EvaluationCache() if cache else None,
        **kwargs,
    )


def journal_bodies(path):
    """All records after the header, parsed."""
    return [json.loads(line) for line in open(path)][1:]


# -- journal file format -------------------------------------------------------


def test_load_rejects_missing_empty_and_headerless(tmp_path):
    with pytest.raises(JournalError, match="not found"):
        load_journal(str(tmp_path / "nope.journal"))
    empty = tmp_path / "empty.journal"
    empty.write_text("")
    with pytest.raises(JournalError, match="empty"):
        load_journal(str(empty))
    headerless = tmp_path / "headerless.journal"
    headerless.write_text('{"type":"baseline","perf":1.0,'
                          '"noise_position":0,"n_evaluations":1}\n')
    with pytest.raises(JournalError, match="header"):
        load_journal(str(headerless))


def test_load_rejects_unknown_version(tmp_path):
    path = tmp_path / "v.journal"
    path.write_text(
        json.dumps({"type": "header", "version": JOURNAL_VERSION + 1}) + "\n"
    )
    with pytest.raises(JournalError, match="version"):
        load_journal(str(path))


def test_load_rejects_out_of_order_generations(tmp_path):
    path = tmp_path / "o.journal"
    gen = {
        "type": "generation", "iteration": 1, "dispatched": [], "perfs": [],
        "population": [], "subset": [], "noise_position": 0,
        "clock_seconds": 0.0, "clock_evaluations": 0, "n_evaluations": 0,
        "rng_state": {},
    }
    path.write_text(
        json.dumps({"type": "header", "version": JOURNAL_VERSION}) + "\n"
        + json.dumps(gen) + "\n"
    )
    with pytest.raises(JournalError, match="out of order"):
        load_journal(str(path))


def test_torn_trailing_line_is_dropped_and_truncated_on_resume(tmp_path):
    path = tmp_path / "torn.journal"
    writer = JournalWriter(str(path), header={"k": "v"})
    writer.write_baseline(BaselineRecord(perf=1.0, noise_position=3,
                                         n_evaluations=1))
    writer.close()
    whole = path.read_text()
    path.write_text(whole + '{"type":"generation","iter')  # killed mid-append

    journal = load_journal(str(path))
    assert journal.baseline is not None
    assert journal.generations == []
    assert journal.valid_bytes == len(whole.encode())

    # resuming truncates the torn tail before appending
    resumed = JournalWriter(str(path), header={}, resume_from=journal)
    resumed.close()
    assert path.read_text() == whole
    reloaded = load_journal(str(path))
    assert reloaded.baseline == journal.baseline


def test_resume_writer_skips_already_recorded_records(tmp_path):
    path = tmp_path / "skip.journal"
    writer = JournalWriter(str(path), header={})
    record = BaselineRecord(perf=2.0, noise_position=3, n_evaluations=1)
    writer.write_baseline(record)
    writer.close()
    size = path.stat().st_size

    resumed = JournalWriter(str(path), header={},
                            resume_from=load_journal(str(path)))
    resumed.write_baseline(record)  # replayed by the resumed run
    resumed.close()
    assert path.stat().st_size == size  # nothing re-appended


def test_replay_cursor_hands_out_records_in_order(tmp_path):
    tuner = make_tuner()
    path = tmp_path / "c.journal"
    tuner.attach_journal(JournalWriter(str(path), header={}))
    tuner.tune(make_workload(), max_iterations=3)

    journal = load_journal(str(path))
    assert journal.completed and journal.last_iteration == 2
    cursor = ReplayCursor(journal)
    assert cursor.baseline() is journal.baseline
    assert cursor.baseline() is None  # consumed
    assert [cursor.next_generation().iteration for _ in range(3)] == [0, 1, 2]
    assert cursor.next_generation() is None and cursor.exhausted


# -- bit-identical kill-and-resume ---------------------------------------------


def run_and_kill_then_resume(tmp_path, faults, keep_generations, total=6):
    """Tune to completion; replay a truncated copy; return both journals."""
    plan = lambda: (
        FaultPlan(seed=5, transient_error_rate=0.15, straggler_rate=0.08)
        if faults else None
    )
    full = tmp_path / "full.journal"
    tuner = make_tuner(faults=plan())
    tuner.attach_journal(JournalWriter(str(full), header={"h": 1}))
    tuner.tune(make_workload(), max_iterations=total)

    # keep header + baseline + k generations, plus a torn half-line
    lines = open(full).readlines()
    cut = tmp_path / "cut.journal"
    with open(cut, "w") as fh:
        fh.writelines(lines[: 2 + keep_generations])
        fh.write(lines[2 + keep_generations][:40])

    journal = load_journal(str(cut))
    assert journal.last_iteration == keep_generations - 1
    resumed = make_tuner(faults=plan())
    resumed.attach_journal(
        JournalWriter(str(cut), header={"h": 1}, resume_from=journal),
        replay=ReplayCursor(journal),
    )
    result = resumed.tune(make_workload(), max_iterations=total)
    return full, cut, result


def test_kill_and_resume_is_bit_identical(tmp_path):
    full, cut, result = run_and_kill_then_resume(
        tmp_path, faults=False, keep_generations=2
    )
    assert journal_bodies(full) == journal_bodies(cut)
    assert result.stop_reason == "budget"


def test_resumed_run_reports_the_fresh_runs_cache_stats(tmp_path):
    """Cache-accounting regression: journal replay re-warms the trace
    cache, and those warming lookups must not inflate the resumed run's
    cache_hit_rate.  The resumed EvaluationStats match the uninterrupted
    run's exactly, with warming visible only in the prewarm_* fields."""
    _, _, resumed_result = run_and_kill_then_resume(
        tmp_path, faults=False, keep_generations=3
    )
    fresh_result = make_tuner().tune(make_workload(), max_iterations=6)
    fresh, resumed = fresh_result.eval_stats, resumed_result.eval_stats

    assert resumed.prewarm_lookups > 0
    assert resumed.prewarm_builds > 0
    assert fresh.prewarm_lookups == 0  # uninterrupted runs never prewarm

    def without_prewarm(stats):
        return {k: v for k, v in stats.as_dict().items()
                if not k.startswith("prewarm_")}

    assert without_prewarm(resumed) == without_prewarm(fresh)
    assert resumed.cache_hit_rate == fresh.cache_hit_rate


@pytest.mark.faults
def test_kill_and_resume_is_bit_identical_under_faults(tmp_path):
    full, cut, result = run_and_kill_then_resume(
        tmp_path, faults=True, keep_generations=3
    )
    assert journal_bodies(full) == journal_bodies(cut)
    assert result.eval_stats.faults_injected > 0


def test_resume_with_wrong_seed_is_detected(tmp_path):
    path = tmp_path / "j.journal"
    tuner = make_tuner()
    tuner.attach_journal(JournalWriter(str(path), header={}))
    tuner.tune(make_workload(), max_iterations=3)
    journal = load_journal(str(path))

    sim = IOStackSimulator(cori(2), NoiseModel(seed=11))
    wrong = HSTuner(sim, stopper=NoStop(), rng=np.random.default_rng(8),
                    population_size=4, cache=EvaluationCache())
    wrong.attach_journal(None, replay=ReplayCursor(journal))
    with pytest.raises(JournalError, match="different genomes|RNG state"):
        wrong.tune(make_workload(), max_iterations=3)


# -- tuning under faults (acceptance) ------------------------------------------


@pytest.mark.faults
def test_twenty_generation_tune_survives_injected_faults():
    """The headline robustness test: a 20-generation tune with a fault
    plan injecting failures completes without crashing, reports its
    counters, and lands within tolerance of the fault-free run."""
    w = make_workload()
    clean = make_tuner().tune(w, max_iterations=20)

    plan = FaultPlan(seed=5, transient_error_rate=0.12, straggler_rate=0.06)
    faulted = make_tuner(faults=plan).tune(w, max_iterations=20)

    stats = faulted.eval_stats
    assert stats is not None and stats.degraded
    assert stats.faults_injected > 0
    assert stats.faults_injected == (
        plan.transient_errors_injected + plan.stragglers_injected
    )
    assert stats.retries > 0
    assert "faults injected" in stats.describe_resilience()
    # faults cost tuning time but must not wreck the search
    assert faulted.best_perf >= 0.5 * clean.best_perf
    assert faulted.total_minutes >= clean.total_minutes


@pytest.mark.faults
def test_poisoned_config_is_quarantined_not_fatal():
    plan = FaultPlan(seed=0)
    plan.poison(StackConfiguration.default())  # the GA's seed individual
    tuner = make_tuner(faults=plan, retry_policy=RetryPolicy(max_retries=1))
    result = tuner.tune(make_workload(), max_iterations=4)
    assert result.eval_stats.quarantined >= 1
    assert result.baseline_perf == 0.0  # worst case served, not crashed
    assert result.best_perf > 0.0  # search still found live configs


# -- thread-pool batch resilience ----------------------------------------------


def test_pool_worker_crash_falls_back_to_serial(tmp_path):
    """A trace builder that only fails off the main thread: the pool
    path fails, the serial fallback succeeds, the tune completes."""
    tuner = make_tuner(batch_workers=2)
    main = threading.main_thread()
    bare_trace = tuner.simulator.trace

    def flaky_in_threads(workload, config):
        if threading.current_thread() is not main:
            raise RuntimeError("thread-local state missing")
        return bare_trace(workload, config)

    tuner.simulator.trace = flaky_in_threads
    result = tuner.tune(make_workload(), max_iterations=3)
    assert result.eval_stats.fallbacks > 0
    assert result.best_perf > 0


def test_pool_worker_bug_surfaces_with_the_config_repr():
    """A deterministic bug in a worker re-raises serially, wrapped with
    the failing configuration's repr (never a bare pool traceback)."""
    tuner = make_tuner(batch_workers=2, cache=False)
    bare_trace = tuner.simulator.trace
    bad = StackConfiguration.default()

    def broken_for_default(workload, config):
        if config == bad:
            raise ZeroDivisionError("layer model bug")
        return bare_trace(workload, config)

    tuner.simulator.trace = broken_for_default
    with pytest.raises(HarnessError) as info:
        tuner.tune(make_workload(), max_iterations=2)
    assert repr(bad) in str(info.value)
    assert isinstance(info.value.__cause__, ZeroDivisionError)


def test_pool_worker_transient_fault_retries_serially():
    """An injected fault in a pool worker charges a retry and the serial
    path re-attempts without crashing the batch."""
    config = StackConfiguration.default()
    for seed in range(300):
        plan = FaultPlan(seed=seed, transient_error_rate=0.5)
        try:
            plan.check_trace(config)  # attempt 0 faulted?
        except TransientFaultError:
            try:
                plan.check_trace(config)  # ...and attempt 1 succeeds?
            except TransientFaultError:
                continue
            plan.reset()
            tuner = make_tuner(faults=plan, batch_workers=2, cache=False)
            result = tuner.tune(make_workload(), max_iterations=2)
            assert result.eval_stats.retries > 0
            assert result.eval_stats.fallbacks == 0
            assert result.best_perf > 0
            return
        continue
    pytest.fail("no seed faulted attempt 0 but not attempt 1")
