"""Lifecycle viability analysis (Figure 12 machinery)."""

import numpy as np
import pytest

from repro.iostack import IOStackSimulator, NoiseModel, cori
from repro.tuners import HSTuner, NoStop
from repro.tuners.lifecycle import (
    LifecycleModel,
    crossover_point,
    lifecycle_model,
    untuned_model,
    viability_point,
)
from tests.conftest import make_workload


def test_lifecycle_model_linear():
    m = LifecycleModel("x", tuning_minutes=100.0, run_minutes=2.0)
    assert m.total_minutes(0) == 100.0
    assert m.total_minutes(50) == 200.0
    with pytest.raises(ValueError):
        m.total_minutes(-1)
    with pytest.raises(ValueError):
        LifecycleModel("x", tuning_minutes=-1, run_minutes=1)
    with pytest.raises(ValueError):
        LifecycleModel("x", tuning_minutes=0, run_minutes=0)


def test_viability_point_formula():
    tuned = LifecycleModel("t", tuning_minutes=100.0, run_minutes=2.0)
    untuned = LifecycleModel("u", tuning_minutes=0.0, run_minutes=4.0)
    n = viability_point(tuned, untuned)
    assert n == 50
    assert tuned.total_minutes(n) <= untuned.total_minutes(n)
    assert tuned.total_minutes(n - 1) > untuned.total_minutes(n - 1)


def test_viability_none_when_tuning_does_not_help():
    tuned = LifecycleModel("t", tuning_minutes=100.0, run_minutes=5.0)
    untuned = LifecycleModel("u", tuning_minutes=0.0, run_minutes=4.0)
    assert viability_point(tuned, untuned) is None


def test_crossover_point():
    fast_tune = LifecycleModel("a", tuning_minutes=100.0, run_minutes=3.0)
    slow_tune = LifecycleModel("b", tuning_minutes=1000.0, run_minutes=2.5)
    n = crossover_point(fast_tune, slow_tune)
    assert n == 1800
    assert slow_tune.total_minutes(n) <= fast_tune.total_minutes(n)


def test_crossover_none_when_b_never_wins():
    a = LifecycleModel("a", tuning_minutes=10.0, run_minutes=1.0)
    b = LifecycleModel("b", tuning_minutes=100.0, run_minutes=2.0)
    assert crossover_point(a, b) is None
    assert crossover_point(b, a) == 0  # a dominates immediately


def test_models_from_tuning_run():
    sim = IOStackSimulator(cori(2), NoiseModel.quiet())
    w = make_workload()
    tuner = HSTuner(sim, stopper=NoStop(), rng=np.random.default_rng(0))
    res = tuner.tune(w, max_iterations=8)
    tuned = lifecycle_model(sim, w, res)
    base = untuned_model(sim, w)
    assert tuned.tuning_minutes == pytest.approx(res.total_minutes)
    assert tuned.run_minutes < base.run_minutes
    n = viability_point(tuned, base)
    assert n is not None and n > 0


def test_model_requires_best_config():
    from repro.tuners.base import TuningResult

    sim = IOStackSimulator(cori(2), NoiseModel.quiet())
    with pytest.raises(ValueError):
        lifecycle_model(sim, make_workload(), TuningResult("t", "w"))
