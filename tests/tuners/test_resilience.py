"""The resilient evaluation harness: retry, timeout, quarantine,
clock accounting, and exception hygiene."""

import numpy as np
import pytest

from repro.iostack import (
    EvaluationCache,
    FaultPlan,
    IOStackSimulator,
    NoiseModel,
    StackConfiguration,
    cori,
)
from repro.iostack.clock import SimulatedClock
from repro.iostack.faults import EvaluationError
from repro.tuners.resilience import HarnessError, ResilientEvaluator, RetryPolicy
from tests.conftest import make_workload


@pytest.fixture
def workload():
    return make_workload()


def harness(faults=None, policy=None, cache=None, seed=11):
    sim = IOStackSimulator(cori(2), NoiseModel(seed=seed), faults=faults)
    clock = SimulatedClock()
    return ResilientEvaluator(sim, clock, cache=cache, policy=policy)


# -- policy validation ---------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_retries": -1},
        {"backoff_seconds": -1.0},
        {"backoff_multiplier": 0.5},
        {"timeout_seconds": 0.0},
        {"worst_case_perf": -1.0},
    ],
)
def test_policy_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)


def test_backoff_is_exponential():
    policy = RetryPolicy(backoff_seconds=10.0, backoff_multiplier=3.0)
    assert [policy.backoff_for(k) for k in range(3)] == [10.0, 30.0, 90.0]


# -- happy path ----------------------------------------------------------------


def test_happy_path_is_bit_identical_to_bare_fastpath(workload):
    config = StackConfiguration.default()
    bare = IOStackSimulator(cori(2), NoiseModel(seed=11))
    expected = bare.evaluate(workload, config, repeats=3)

    h = harness()
    perf = h.evaluate_config(workload, config, repeats=3)
    assert perf == expected.perf_mbps
    assert h.clock.elapsed_seconds == (
        h.clock.setup_overhead + expected.charged_seconds
    )
    assert h.stats.as_dict() == {
        "retries": 0, "timeouts": 0, "quarantined": 0, "fallbacks": 0,
    }


def test_charge_false_leaves_the_clock_untouched(workload):
    h = harness()
    h.evaluate_config(workload, StackConfiguration.default(), repeats=3,
                      charge=False)
    assert h.clock.elapsed_seconds == 0.0


# -- retry ---------------------------------------------------------------------


def test_transient_faults_retry_and_charge_backoff(workload):
    config = StackConfiguration.default()
    # Find a seed whose first attempt faults but a later one succeeds.
    for seed in range(200):
        plan = FaultPlan(seed=seed, transient_error_rate=0.6)
        try:
            plan.check_trace(config)
            continue
        except EvaluationError:
            pass
        plan.reset()
        h = harness(faults=plan, policy=RetryPolicy(max_retries=3,
                                                    backoff_seconds=45.0))
        perf = h.evaluate_config(workload, config, repeats=3)
        if h.stats.retries and not h.stats.quarantined:
            assert perf > 0
            # every failed attempt charged launch + its backoff
            base = h.clock.setup_overhead
            expected_failures = sum(
                base + h.policy.backoff_for(k) for k in range(h.stats.retries)
            )
            assert h.clock.elapsed_seconds > expected_failures
            return
    pytest.fail("no seed produced a retry-then-success schedule")


def test_exhausted_retries_quarantine_at_worst_case(workload):
    plan = FaultPlan(seed=0)
    config = StackConfiguration.default()
    plan.poison(config)
    h = harness(faults=plan, policy=RetryPolicy(max_retries=2,
                                                worst_case_perf=0.0))
    perf = h.evaluate_config(workload, config, repeats=3)
    assert perf == 0.0
    assert h.stats.quarantined == 1
    assert h.stats.retries == 2
    assert h.is_quarantined(config)


def test_quarantined_config_short_circuits(workload):
    plan = FaultPlan(seed=0)
    config = StackConfiguration.default()
    plan.poison(config)
    h = harness(faults=plan)
    h.evaluate_config(workload, config, repeats=3)
    before = h.simulator.traces_built
    t0 = h.clock.elapsed_seconds
    assert h.evaluate_config(workload, config, repeats=3) == 0.0
    assert h.simulator.traces_built == before  # not attempted again
    assert h.clock.elapsed_seconds == t0 + h.clock.setup_overhead


def test_quarantine_state_round_trip(workload):
    plan = FaultPlan(seed=0)
    config = StackConfiguration.default()
    plan.poison(config)
    h = harness(faults=plan)
    h.evaluate_config(workload, config, repeats=3)
    state = h.quarantine_state()
    other = harness()
    other.restore_quarantine(state)
    assert other.is_quarantined(config)


# -- timeout -------------------------------------------------------------------


def test_timeout_kills_retries_then_quarantines(workload):
    config = StackConfiguration.default()
    h = harness(policy=RetryPolicy(max_retries=1, timeout_seconds=0.001))
    perf = h.evaluate_config(workload, config, repeats=3)
    assert perf == 0.0
    assert h.stats.timeouts == 2  # first attempt + one retry
    assert h.stats.quarantined == 1
    # each timed-out run was charged as killed at the deadline
    assert h.clock.elapsed_seconds == pytest.approx(
        2 * (h.clock.setup_overhead + 0.001) + h.clock.setup_overhead
    )


def test_generous_timeout_never_engages(workload):
    h = harness(policy=RetryPolicy(timeout_seconds=1e9))
    h.evaluate_config(workload, StackConfiguration.default(), repeats=3)
    assert h.stats.timeouts == 0


# -- exception hygiene ---------------------------------------------------------


def test_unexpected_errors_wrap_with_the_config_repr(workload):
    h = harness()
    config = StackConfiguration.default()

    def broken_trace(*a, **k):
        raise ZeroDivisionError("bug in a layer model")

    h.simulator.trace = broken_trace
    with pytest.raises(HarnessError) as info:
        h.build_trace(workload, config)
    assert repr(config) in str(info.value)
    assert isinstance(info.value.__cause__, ZeroDivisionError)


def test_non_finite_perf_is_a_retryable_failure(workload):
    h = harness(policy=RetryPolicy(max_retries=0))
    config = StackConfiguration.default()
    trace = h.simulator.trace(workload, config)

    class Bad:
        perf_mbps = float("nan")
        charged_seconds = 1.0

    h.simulator.evaluate_trace_with_factors = lambda *a, **k: Bad()
    perf = h.evaluate_trace(workload, config, trace, np.ones(3), repeats=3)
    assert perf == 0.0  # quarantined, not crashed, no NaN leaked
    assert h.stats.quarantined == 1


# -- cache interaction ---------------------------------------------------------


def test_faulted_attempts_never_store_a_trace(workload):
    plan = FaultPlan(seed=0)
    config = StackConfiguration.default()
    plan.poison(config)
    cache = EvaluationCache()
    h = harness(faults=plan, cache=cache)
    assert h.build_trace(workload, config) is None
    assert len(cache) == 0
    # ...and a later lookup cannot be served a faulted/partial trace
    assert cache.lookup(h.simulator.platform, workload, config) is None


def test_successful_trace_goes_through_the_cache(workload):
    cache = EvaluationCache()
    h = harness(cache=cache)
    config = StackConfiguration.default()
    trace = h.build_trace(workload, config)
    assert cache.lookup(h.simulator.platform, workload, config) is trace
