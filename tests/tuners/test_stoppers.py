"""Stopping strategies."""

import pytest

from repro.tuners.base import IterationRecord
from repro.tuners.stoppers import (
    HeuristicStopper,
    MaxPerfOracleStopper,
    NoStop,
    Stopper,
    TimeBudgetStopper,
)


def history(perfs, minutes_per_iter=10.0):
    return [
        IterationRecord(
            iteration=i,
            iteration_perf=p,
            best_perf=p,
            elapsed_minutes=(i + 1) * minutes_per_iter,
            evaluations=5,
        )
        for i, p in enumerate(perfs)
    ]


def test_all_satisfy_protocol():
    for stopper in (NoStop(), HeuristicStopper(), MaxPerfOracleStopper(1.0),
                    TimeBudgetStopper(10)):
        assert isinstance(stopper, Stopper)
        stopper.reset()


def test_nostop_never_stops():
    h = history([1.0] * 100)
    assert not NoStop().should_stop(h)


def test_heuristic_stops_on_flat_window():
    flat = history([1.0, 2.0, 3.0] + [3.0] * 6)
    stopper = HeuristicStopper(threshold=0.05, window=5)
    assert stopper.should_stop(flat)


def test_heuristic_keeps_going_while_improving():
    growing = history([1.0 * 1.1**i for i in range(10)])
    assert not HeuristicStopper().should_stop(growing)


def test_heuristic_needs_full_window():
    short = history([1.0, 1.0, 1.0])
    assert not HeuristicStopper(window=5).should_stop(short)


def test_heuristic_threshold_semantics():
    # +4% over the window is below a 5% threshold -> stop.
    h = history([1.0, 1.0, 1.0, 1.0, 1.0, 1.04])
    assert HeuristicStopper(threshold=0.05, window=5).should_stop(h)
    assert not HeuristicStopper(threshold=0.03, window=5).should_stop(h)


def test_heuristic_validation():
    with pytest.raises(ValueError):
        HeuristicStopper(threshold=-0.1)
    with pytest.raises(ValueError):
        HeuristicStopper(window=0)


def test_max_perf_oracle():
    stopper = MaxPerfOracleStopper(optimal_perf_mbps=100.0)
    assert not stopper.should_stop(history([50.0, 80.0]))
    assert stopper.should_stop(history([50.0, 99.9]))
    with pytest.raises(ValueError):
        MaxPerfOracleStopper(0.0)


def test_time_budget():
    stopper = TimeBudgetStopper(budget_minutes=25.0)
    assert not stopper.should_stop(history([1.0, 2.0]))  # 20 minutes
    assert stopper.should_stop(history([1.0, 2.0, 3.0]))  # 30 minutes
    assert not stopper.should_stop([])
    with pytest.raises(ValueError):
        TimeBudgetStopper(0)


def test_any_stopper_fires_on_either():
    from repro.tuners.stoppers import AnyStopper

    budget = TimeBudgetStopper(budget_minutes=25.0)
    heuristic = HeuristicStopper(window=3)
    combo = AnyStopper(budget, heuristic)
    assert not combo.should_stop(history([1.0, 2.0]))         # 20 min, growing
    assert combo.should_stop(history([1.0, 2.0, 3.0]))        # budget fires
    flat = history([1.0] * 5, minutes_per_iter=1.0)
    assert combo.should_stop(flat)                            # heuristic fires
    combo.reset()
    with pytest.raises(ValueError):
        AnyStopper()
