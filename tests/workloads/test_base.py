"""Workload abstraction: loops, reduction, transforms."""

import pytest

from repro.iostack.phase import IOPhase
from repro.iostack.requests import RequestStream
from repro.workloads.base import LoopGroup, Workload
from tests.conftest import make_workload


def test_totals_aggregate_over_phases():
    w = make_workload(writes_per_proc=10, n_procs=4, n_iterations=5)
    assert w.write_ops == 10 * 4 * 5
    assert w.alpha == 1.0
    assert w.compute_seconds == pytest.approx(2.0 * 5)


def test_loop_reduced_keeps_leading_iterations():
    w = make_workload(n_iterations=100)
    reduced = w.loop_reduced(0.01)
    assert reduced.extrapolation_factor == pytest.approx(100.0)
    assert reduced.loops[0].n_iterations == 1
    assert reduced.write_ops == pytest.approx(w.write_ops / 100, rel=0.05)
    assert "loopred" in reduced.name


def test_loop_reduced_ceil_rounding():
    w = make_workload(n_iterations=85)
    reduced = w.loop_reduced(0.01)
    assert reduced.loops[0].n_iterations == 1  # ceil(0.85)


def test_loop_reduced_too_small_is_noop():
    w = make_workload(n_iterations=2)
    assert w.loop_reduced(0.9) is w
    assert w.loop_reduced(1.0) is w


def test_loop_reduced_validation():
    w = make_workload()
    with pytest.raises(ValueError):
        w.loop_reduced(0.0)
    with pytest.raises(ValueError):
        w.loop_reduced(1.5)


def test_non_reducible_loops_left_alone():
    w = make_workload(n_iterations=100)
    import dataclasses

    frozen = dataclasses.replace(
        w, loops=tuple(dataclasses.replace(l, reducible=False) for l in w.loops)
    )
    assert frozen.loop_reduced(0.01) is frozen


def test_switched_to_memory_marks_all_phases():
    w = make_workload().switched_to_memory()
    assert all(p.tier == "memory" for p in w.phases())
    assert "memio" in w.name


def test_with_compute_scaled():
    w = make_workload(compute_seconds=4.0, n_iterations=3)
    zero = w.with_compute_scaled(0.0)
    assert zero.compute_seconds == 0.0
    assert zero.write_ops == w.write_ops
    with pytest.raises(ValueError):
        w.with_compute_scaled(-1.0)


def test_without_fixed_phases():
    log_phase = IOPhase(
        name="logging",
        compute_seconds=0.0,
        data=(RequestStream.uniform("write", 64, 100, 4, collective_capable=False),),
    )
    import dataclasses

    w = dataclasses.replace(make_workload(), fixed_phases=(log_phase,))
    stripped = w.without_fixed_phases("logging")
    assert stripped.fixed_phases == ()
    assert stripped.write_ops == w.write_ops - 100


def test_workload_validation():
    with pytest.raises(ValueError):
        Workload(name="empty", n_procs=4, n_nodes=2)
    with pytest.raises(ValueError):
        make_workload(n_procs=1, n_nodes=2)
    with pytest.raises(ValueError):
        LoopGroup(name="l", n_iterations=0, phases=(make_workload().phases()[0],))
    with pytest.raises(ValueError):
        LoopGroup(name="l", n_iterations=1, phases=())
