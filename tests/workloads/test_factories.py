"""Application workload factories and their calibration envelope."""

import pytest

from repro.iostack import IOStackSimulator, NoiseModel, StackConfiguration, cori
from repro.workloads import bdcats, flash, hacc, macsio_vpic_dipole, vpic


ALL_COMPONENT_APPS = [vpic, flash, hacc, macsio_vpic_dipole]


@pytest.mark.parametrize("factory", ALL_COMPONENT_APPS)
def test_component_apps_use_paper_job_shape(factory):
    w = factory()
    assert w.n_procs == 128
    assert w.n_nodes == 4


def test_bdcats_uses_end_to_end_scale():
    w = bdcats()
    assert w.n_procs == 1600
    assert w.n_nodes == 500
    assert w.alpha < 0.3  # read-heavy


@pytest.mark.parametrize("factory", ALL_COMPONENT_APPS)
def test_write_only_apps(factory):
    w = factory()
    assert w.bytes_read == 0
    assert w.alpha == 1.0
    assert w.bytes_written > 1e10  # tens of GB per run


def test_macsio_logging_share_matches_figure_8c():
    w = macsio_vpic_dipole()
    logging = next(p for p in w.fixed_phases if p.name == "logging")
    share = logging.write_ops / w.write_ops
    assert 0.15 < share < 0.25  # paper: 19.05% of ops
    assert logging.bytes_written / w.bytes_written < 1e-4


def test_untuned_bandwidths_in_paper_range(quiet_sim, default_config):
    """Untuned perf per app lands near the paper's reported levels."""
    expectations = {
        "vpic-io": (0.3, 1.0),
        "flash-io": (0.1, 0.6),
        "hacc-io": (0.3, 0.8),  # paper: 0.55 GB/s
        "macsio-vpic-dipole": (0.1, 0.6),
    }
    for factory in ALL_COMPONENT_APPS:
        w = factory()
        perf = quiet_sim.evaluate(w, default_config).perf_mbps / 1000
        lo, hi = expectations[w.name]
        assert lo < perf < hi, (w.name, perf)


def test_tuned_bandwidths_in_paper_range(quiet_sim, tuned_config):
    """The hand-tuned configuration reaches the ~2.0-2.5 GB/s level the
    paper reports for tuned 4-node runs (FLASH 2.3, HACC 2.2)."""
    for factory in ALL_COMPONENT_APPS:
        w = factory()
        perf = quiet_sim.evaluate(w, tuned_config).perf_mbps / 1000
        assert 1.6 < perf < 3.0, (w.name, perf)


def test_tuning_gains_roughly_match_paper(quiet_sim, default_config, tuned_config):
    """HACC ~4x (paper), others 3-10x."""
    w = hacc()
    base = quiet_sim.evaluate(w, default_config).perf_mbps
    tuned = quiet_sim.evaluate(w, tuned_config).perf_mbps
    assert 2.5 < tuned / base < 7.0


def test_bdcats_tuned_scale(default_config):
    sim = IOStackSimulator(cori(500), NoiseModel.quiet())
    w = bdcats()
    mib = 1024 * 1024
    tuned = default_config.with_values(
        striping_factor=248, romio_collective=True, cb_nodes=512,
        cb_buffer_size=64 * mib, coll_metadata_ops=True, mdc_config="large",
    )
    perf = sim.evaluate(w, tuned).perf_mbps / 1000
    # Paper: 88 GB/s tuned; our simulator lands the same order of magnitude.
    assert 50 < perf < 300


def test_factories_validate_arguments():
    with pytest.raises(ValueError):
        vpic(particles_per_proc=0)
    with pytest.raises(ValueError):
        flash(n_checkpoints=0)
    with pytest.raises(ValueError):
        hacc(n_checkpoints=0)
    with pytest.raises(ValueError):
        bdcats(particles_per_proc=-1)


def test_first_iteration_blocks_are_heavier():
    w = macsio_vpic_dipole()
    first, steady = w.loops[0].phases
    per_iter_first = first.write_ops
    per_iter_steady = steady.write_ops / (w.loops[0].n_iterations - 1)
    assert per_iter_first > per_iter_steady
