"""The synthetic dump-workload generator (MACSio stand-in)."""

import pytest

from repro.workloads.generator import DumpSpec, build_dump_workload


def spec(**overrides):
    base = dict(
        name="gen",
        n_procs=8,
        n_nodes=2,
        n_dumps=10,
        bytes_per_proc_per_dump=1024 * 1024,
        writes_per_proc_per_dump=4,
        compute_seconds_per_dump=1.0,
    )
    base.update(overrides)
    return DumpSpec(**base)


def test_volumes_match_spec():
    w = build_dump_workload(spec(first_dump_extra_ops_fraction=0.0))
    assert w.write_ops == 4 * 8 * 10
    assert w.bytes_written == 1024 * 1024 * 8 * 10
    assert w.compute_seconds == pytest.approx(10.0)


def test_first_dump_extra_ops():
    w = build_dump_workload(spec(first_dump_extra_ops_fraction=0.5))
    first = w.loops[0].phases[0]
    assert first.write_ops == round(4 * 8 * 1.5)


def test_logging_phase_generated():
    w = build_dump_workload(spec(log_lines_per_proc_per_dump=2.0))
    logging = next(p for p in w.fixed_phases if p.name == "logging")
    assert logging.write_ops == 2 * 8 * 10
    assert not logging.data[0].collective_capable
    assert not logging.data[0].shared_file


def test_read_fraction_adds_read_stream():
    w = build_dump_workload(spec(read_fraction=0.25))
    assert w.bytes_read == pytest.approx(0.25 * w.bytes_written, rel=0.05)
    assert 0.7 < w.alpha < 0.9


def test_no_logging_no_fixed_phase():
    w = build_dump_workload(spec())
    assert w.fixed_phases == ()


def test_single_dump_loop():
    w = build_dump_workload(spec(n_dumps=1))
    assert len(w.loops[0].phases) == 1


def test_spec_validation():
    with pytest.raises(ValueError):
        spec(n_dumps=0)
    with pytest.raises(ValueError):
        spec(bytes_per_proc_per_dump=0)
    with pytest.raises(ValueError):
        spec(first_dump_extra_ops_fraction=3.0)
    with pytest.raises(ValueError):
        spec(read_fraction=-0.5)


def test_generated_workload_runs(quiet_sim, default_config):
    w = build_dump_workload(spec())
    res = quiet_sim.evaluate(w, default_config)
    assert res.perf_mbps > 0
