"""The IOR-style benchmark workload."""

import pytest

from repro.iostack.units import MiB
from repro.workloads import ior


def test_volumes_match_parameters():
    w = ior(n_procs=8, n_nodes=2, block_size=16 * MiB, transfer_size=2 * MiB,
            n_segments=3, read_back=True)
    assert w.bytes_written == 16 * MiB * 8 * 3
    assert w.bytes_read == w.bytes_written
    assert w.write_ops == (16 // 2) * 8 * 3
    assert w.alpha == pytest.approx(0.5)


def test_write_only_mode():
    w = ior(read_back=False)
    assert w.bytes_read == 0
    assert w.alpha == 1.0


def test_fpp_streams_are_private_files():
    fpp = ior(file_per_process=True)
    shared = ior(file_per_process=False)
    fpp_streams = [s for p in fpp.phases() for s in p.data]
    assert all(not s.shared_file for s in fpp_streams)
    assert all(s.interleave == 0.0 for s in fpp_streams)
    shared_streams = [s for p in shared.phases() for s in p.data]
    assert all(s.shared_file for s in shared_streams)


def test_fpp_has_heavier_metadata():
    fpp = ior(file_per_process=True)
    shared = ior(file_per_process=False)
    meta = lambda w: sum(p.metadata.total_ops for p in w.phases() if p.metadata)
    assert meta(fpp) > 2 * meta(shared)


def test_fpp_avoids_lock_contention(quiet_sim, default_config):
    """FPP sidesteps shared-file extent locks: with default striping it
    is much faster than the shared-file run."""
    fpp = quiet_sim.evaluate(ior(file_per_process=True), default_config).perf_mbps
    shared = quiet_sim.evaluate(ior(file_per_process=False), default_config).perf_mbps
    assert fpp > 2 * shared


def test_shared_file_benefits_from_tuning(quiet_sim, default_config, tuned_config):
    w = ior(file_per_process=False)
    base = quiet_sim.evaluate(w, default_config).perf_mbps
    tuned = quiet_sim.evaluate(w, tuned_config).perf_mbps
    assert tuned > 2 * base


def test_validation():
    with pytest.raises(ValueError):
        ior(block_size=0)
    with pytest.raises(ValueError):
        ior(block_size=MiB, transfer_size=2 * MiB)
    with pytest.raises(ValueError):
        ior(n_segments=0)
