"""Bundled C sources and their consistency with workload factories."""

import pytest

from repro.discovery.modelgen import workload_from_source
from repro.workloads import flash, hacc, macsio_vpic_dipole, vpic
from repro.workloads.sources import available_sources, canonical_hints, load_source


def test_all_sources_available():
    assert available_sources() == ("bdcats", "flash", "hacc", "macsio", "vpic")


def test_unknown_source_rejected():
    with pytest.raises(KeyError):
        load_source("gromacs")
    with pytest.raises(KeyError):
        canonical_hints("gromacs")


@pytest.mark.parametrize("name", ["macsio", "vpic", "flash", "hacc", "bdcats"])
def test_sources_look_like_hdf5_mpi_programs(name):
    src = load_source(name)
    assert "#include <hdf5.h>" in src
    assert "MPI_Init" in src
    assert "H5Fcreate" in src or "H5Fopen" in src
    assert "int main" in src


@pytest.mark.parametrize(
    ("name", "factory"),
    [("vpic", vpic), ("flash", flash), ("hacc", hacc)],
)
def test_source_models_track_factories(name, factory):
    """The statically interpreted source should agree with the
    hand-written behavioural model on volume within ~25%."""
    modelled = workload_from_source(load_source(name), name, canonical_hints(name))
    coded = factory()
    assert modelled.bytes_written == pytest.approx(coded.bytes_written, rel=0.25)
    assert modelled.n_procs == coded.n_procs
    assert modelled.compute_seconds == pytest.approx(coded.compute_seconds, rel=0.35)


def test_macsio_source_tracks_factory():
    modelled = workload_from_source(
        load_source("macsio"), "macsio", canonical_hints("macsio")
    )
    coded = macsio_vpic_dipole()
    assert modelled.bytes_written == pytest.approx(coded.bytes_written, rel=0.25)
    # Both carry a logging phase of the same ops share.
    m_log = next(p for p in modelled.fixed_phases if p.name == "logging")
    c_log = next(p for p in coded.fixed_phases if p.name == "logging")
    m_share = m_log.write_ops / modelled.write_ops
    c_share = c_log.write_ops / coded.write_ops
    assert m_share == pytest.approx(c_share, abs=0.05)
